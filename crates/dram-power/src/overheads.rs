//! Hardware overhead estimates from Section 4.2 of the paper: the die-area
//! budget of Table 2 and the published PRA-latch / FGD / wordline-gate
//! overheads.
//!
//! These are published constants (the paper derives them from CACTI-3DD and
//! prior latch designs); the functions here make the derived *relative*
//! overheads available so tests and documentation can cross-check the
//! paper's claims.

/// Die-area breakdown of the baseline 2 Gb x8 DDR3-1600 chip (Table 2), in
/// square millimetres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieArea {
    /// DRAM cell array area.
    pub dram_cell_mm2: f64,
    /// Sense amplifier area.
    pub sense_amplifier_mm2: f64,
    /// Row predecoder area.
    pub row_predecoder_mm2: f64,
    /// Local wordline driver area.
    pub local_wordline_driver_mm2: f64,
    /// Total die area including periphery.
    pub total_mm2: f64,
}

impl DieArea {
    /// Table 2 values.
    pub const fn paper_table2() -> Self {
        DieArea {
            dram_cell_mm2: 4.677,
            sense_amplifier_mm2: 1.909,
            row_predecoder_mm2: 0.067,
            local_wordline_driver_mm2: 1.617,
            total_mm2: 11.884,
        }
    }

    /// Sum of the itemised components (the remainder of
    /// [`DieArea::total_mm2`] is unitemised periphery).
    pub fn itemised_mm2(&self) -> f64 {
        self.dram_cell_mm2
            + self.sense_amplifier_mm2
            + self.row_predecoder_mm2
            + self.local_wordline_driver_mm2
    }
}

impl Default for DieArea {
    fn default() -> Self {
        DieArea::paper_table2()
    }
}

/// PRA-specific chip overheads (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PraOverheads {
    /// Area of one PRA latch at 20 nm, in square micrometres.
    pub latch_area_um2: f64,
    /// PRA latches per chip (one 8-bit latch per bank).
    pub latches_per_chip: u32,
    /// Power of one PRA latch per row activation, in microwatts.
    pub latch_power_uw: f64,
    /// Published total latch area overhead relative to the die (0.13%).
    pub published_latch_area_overhead: f64,
    /// Published latch power overhead relative to activation power (0.017%).
    pub published_latch_power_overhead: f64,
    /// Published wordline AND-gate area overhead relative to the die (~3%),
    /// from the Microbank analysis the paper cites.
    pub published_wordline_gate_area_overhead: f64,
}

impl PraOverheads {
    /// Section 4.2 values.
    pub const fn paper_section42() -> Self {
        PraOverheads {
            latch_area_um2: 1.97,
            latches_per_chip: 8,
            latch_power_uw: 3.8,
            published_latch_area_overhead: 0.0013,
            published_latch_power_overhead: 0.00017,
            published_wordline_gate_area_overhead: 0.03,
        }
    }

    /// Combined PRA area overhead fraction (latches + wordline gates).
    pub fn total_area_overhead(&self) -> f64 {
        self.published_latch_area_overhead + self.published_wordline_gate_area_overhead
    }
}

impl Default for PraOverheads {
    fn default() -> Self {
        PraOverheads::paper_section42()
    }
}

/// Fine-grained dirty bit (FGD) overheads in the cache hierarchy
/// (Section 4.2, CACTI at 22 nm): adding 7 extra dirty bits per 64 B line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgdOverheads {
    /// Relative area overhead.
    pub area: f64,
    /// Relative per-access dynamic energy overhead.
    pub dynamic_energy: f64,
    /// Relative leakage power overhead.
    pub leakage: f64,
}

impl FgdOverheads {
    /// 32 KB L1 cache overheads.
    pub const fn l1_32k() -> Self {
        FgdOverheads {
            area: 0.0031,
            dynamic_energy: 0.0012,
            leakage: 0.0126,
        }
    }

    /// 4 MB L2 cache overheads.
    pub const fn l2_4m() -> Self {
        FgdOverheads {
            area: 0.0109,
            dynamic_energy: 0.0041,
            leakage: 0.0139,
        }
    }

    /// Extra dirty-bit storage per line: 7 bits on top of the existing one,
    /// relative to the 64 B (512-bit) data field plus tag.
    pub fn extra_bits_per_line() -> u32 {
        7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_area_itemised_below_total() {
        let a = DieArea::paper_table2();
        assert!(a.itemised_mm2() < a.total_mm2);
        assert!((a.total_mm2 - 11.884).abs() < 1e-9);
    }

    #[test]
    fn pra_overheads_are_small() {
        let o = PraOverheads::paper_section42();
        // The paper's headline: all PRA hardware costs stay within a few
        // percent of the die.
        assert!(o.total_area_overhead() < 0.04);
        assert!(o.published_latch_power_overhead < 0.001);
    }

    #[test]
    fn fgd_overheads_bounded() {
        for o in [FgdOverheads::l1_32k(), FgdOverheads::l2_4m()] {
            assert!(o.area < 0.02);
            assert!(o.dynamic_energy < 0.01);
            assert!(o.leakage < 0.02);
        }
        assert_eq!(FgdOverheads::extra_bits_per_line(), 7);
    }
}
