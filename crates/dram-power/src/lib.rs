//! DDR3 power, energy and area models for the PRA reproduction.
//!
//! Three models live here, mirroring Section 5.1.1 of the paper:
//!
//! * [`PowerParams`] / [`IddParams`] — the Micron-calculator-style component
//!   power parameters of Table 3, including the per-granularity row
//!   activation power array and the Eq. (1)/(2) derivation of `P_ACT` from
//!   IDD currents.
//! * [`ActivationEnergyModel`] — the CACTI-3DD-style activation energy
//!   breakdown of Table 2, from which Figure 9's energy-vs-MATs curve and the
//!   granularity scaling factors follow.
//! * [`EnergyAccounting`] — the event-driven accumulator the simulator feeds
//!   (activations by granularity, read/write line transfers, per-cycle
//!   background state, refreshes) and that produces the
//!   [`EnergyBreakdown`]/[`PowerBreakdown`] used by Figures 2 and 12.
//!
//! Hardware overhead estimates from Section 4.2 (PRA latches, FGD bits,
//! wordline gates) are in [`overheads`].
//!
//! Unit conventions: power in **milliwatts**, time in **nanoseconds**, energy
//! in **picojoules** (conveniently, `1 mW x 1 ns = 1 pJ`).
//!
//! # Example
//!
//! ```
//! use dram_power::{EnergyAccounting, PowerParams, RankPowerState};
//!
//! let params = PowerParams::paper_table3();
//! let mut acc = EnergyAccounting::new(params, 4); // 4 ranks in the system
//! acc.activation(8); // one full-row activation+precharge pair
//! acc.activation(1); // one 1/8-row PRA activation
//! acc.read_line();
//! acc.write_line(0.25); // PRA write transferring 2 of 8 words
//! acc.background_cycle(0, RankPowerState::ActiveStandby);
//! acc.refresh();
//! let breakdown = acc.breakdown();
//! assert!(breakdown.act_pre > 0.0 && breakdown.total() > breakdown.act_pre);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod activation_energy;
mod breakdown;
pub mod overheads;
mod params;
mod telemetry;

pub use accounting::{EnergyAccounting, RankPowerState, MAT_GRANULARITIES};
pub use activation_energy::{ActivationEnergyModel, Figure9Point};
pub use breakdown::{EnergyBreakdown, PowerBreakdown};
pub use params::{DevicePowerTimings, IddParams, PowerParams};
pub use telemetry::{PowerRail, RankResidency, ResidencyLedger, MAX_BANKS};
