//! Component power parameters (paper Table 3) and the IDD-based derivation
//! of row activation power (paper Equations 1 and 2).

/// Timing values (in nanoseconds) the power model needs.
///
/// These mirror the DDR3-1600 cycle counts of Table 3 at `tCK = 1.25 ns`:
/// `tRAS = 28 cyc = 35 ns`, `tRP = 11 cyc`, `tRC = 39 cyc = 48.75 ns`,
/// `tRFC = 160 ns` (2 Gb device), `tREFI = 7.8 us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePowerTimings {
    /// Clock period in ns (1.25 for DDR3-1600).
    pub tck_ns: f64,
    /// Row activation time in ns.
    pub tras_ns: f64,
    /// Row cycle (activate-to-activate, same bank) in ns.
    pub trc_ns: f64,
    /// Refresh cycle time in ns.
    pub trfc_ns: f64,
    /// Average refresh interval in ns.
    pub trefi_ns: f64,
    /// Data-bus cycles a BL8 line transfer occupies (4 for DDR3: 8 beats at
    /// two beats per clock).
    pub burst_cycles: u64,
}

impl DevicePowerTimings {
    /// DDR3-1600, 2 Gb device defaults.
    pub const fn ddr3_1600() -> Self {
        DevicePowerTimings {
            tck_ns: 1.25,
            tras_ns: 35.0,
            trc_ns: 48.75,
            trfc_ns: 160.0,
            trefi_ns: 7800.0,
            burst_cycles: 4,
        }
    }
}

impl DevicePowerTimings {
    /// DDR4-2400, 8 Gb device.
    pub const fn ddr4_2400() -> Self {
        DevicePowerTimings {
            tck_ns: 0.833,
            tras_ns: 32.5,
            trc_ns: 45.8,
            trfc_ns: 350.0,
            trefi_ns: 7800.0,
            burst_cycles: 4,
        }
    }
}

impl Default for DevicePowerTimings {
    fn default() -> Self {
        DevicePowerTimings::ddr3_1600()
    }
}

/// IDD currents of the modelled device, feeding Equations (1)/(2).
///
/// The paper does not reprint the datasheet IDD values it plugged into
/// Eq. (1); [`IddParams::calibrated_to_paper`] documents the values chosen
/// here so that `P_ACT` for a full row reproduces the paper's 22.2 mW
/// (Table 3). The structural relationship — activation power is what remains
/// of IDD0 after subtracting the active/idle background currents over a row
/// cycle — is exactly Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddParams {
    /// One-bank activate-precharge current (mA), averaged over `tRC`.
    pub idd0_ma: f64,
    /// Precharge standby current (mA) — all banks idle.
    pub idd2n_ma: f64,
    /// Active standby current (mA) — at least one bank open.
    pub idd3n_ma: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl IddParams {
    /// IDD set calibrated so Eq. (1)/(2) give the paper's
    /// `P_ACT(full) = 22.2 mW` with DDR3-1600 timing.
    pub const fn calibrated_to_paper() -> Self {
        IddParams {
            idd0_ma: 46.42,
            idd2n_ma: 23.0,
            idd3n_ma: 35.0,
            vdd: 1.5,
        }
    }

    /// Equation (1): the pure activation current, i.e. IDD0 minus the
    /// weighted background currents over a row cycle.
    ///
    /// `I_ACT = IDD0 - (IDD3N*tRAS + IDD2N*(tRC - tRAS)) / tRC`
    pub fn i_act_ma(&self, t: &DevicePowerTimings) -> f64 {
        self.idd0_ma
            - (self.idd3n_ma * t.tras_ns + self.idd2n_ma * (t.trc_ns - t.tras_ns)) / t.trc_ns
    }

    /// Equation (2): `P_ACT = VDD * I_ACT`, in mW.
    pub fn p_act_mw(&self, t: &DevicePowerTimings) -> f64 {
        self.vdd * self.i_act_ma(t)
    }
}

impl Default for IddParams {
    fn default() -> Self {
        IddParams::calibrated_to_paper()
    }
}

/// Per-component power parameters (mW), as published in the paper's Table 3.
///
/// All values are **rank-level** operation powers as used by Micron's DDR3
/// system-power methodology: background powers apply per rank per cycle,
/// `rd`/`wr` apply while the data bus moves a line, I/O and termination
/// powers apply during bursts, and `act_by_granularity[k-1]` is the
/// activation(+precharge) power for a `k/8`-row activation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Precharge standby background power (all banks idle, CKE high).
    pub pre_stby_mw: f64,
    /// Precharge power-down background power.
    pub pre_pdn_mw: f64,
    /// Active standby background power (>=1 bank open).
    pub act_stby_mw: f64,
    /// Refresh power, applied during `tRFC` windows.
    pub ref_mw: f64,
    /// Read burst (core array + datapath) power.
    pub rd_mw: f64,
    /// Write burst power.
    pub wr_mw: f64,
    /// Read I/O (output driver) power.
    pub rd_io_mw: f64,
    /// Write on-die-termination power.
    pub wr_odt_mw: f64,
    /// Read termination power dissipated in the sibling rank.
    pub rd_term_mw: f64,
    /// Write termination power dissipated in the sibling rank.
    pub wr_term_mw: f64,
    /// Row activation power by granularity: index `k-1` holds the power of a
    /// `k/8`-row activation. Index 7 (full row) matches Eq. (1)/(2).
    pub act_by_granularity_mw: [f64; 8],
    /// Models an x72 ECC DIMM (Section 4.2): a ninth chip stores ECC codes
    /// with its PRA# pin strapped high, so it activates a full row on every
    /// access and always moves its data. Adds one-eighth of the full-row
    /// activation energy to every activation and one-eighth to all transfer
    /// energies.
    pub ecc_x72: bool,
    /// Calibration multiplier applied to the I/O-class energies (read I/O,
    /// write ODT, read/write termination). The paper lists per-window I/O
    /// powers but observes an average 14% (max 19%) I/O share of total DRAM
    /// power (Fig. 2), which per-burst-window accounting of the listed
    /// values cannot reach — their calculator evidently includes the
    /// termination dissipated across both populated ranks and the
    /// controller side. This factor is calibrated so the reproduced Fig. 2
    /// matches the paper's I/O share; EXPERIMENTS.md records the check.
    pub io_multiplier: f64,
    /// Timing context used to convert powers into per-event energies.
    pub timings: DevicePowerTimings,
}

impl PowerParams {
    /// The paper's published Table 3 parameter set.
    ///
    /// ```
    /// use dram_power::PowerParams;
    /// let p = PowerParams::paper_table3();
    /// assert_eq!(p.act_power_mw(8), 22.2);
    /// assert_eq!(p.act_power_mw(1), 3.7);
    /// ```
    pub const fn paper_table3() -> Self {
        PowerParams {
            pre_stby_mw: 27.0,
            pre_pdn_mw: 18.0,
            act_stby_mw: 42.0,
            ref_mw: 210.0,
            rd_mw: 78.0,
            wr_mw: 93.0,
            rd_io_mw: 4.6,
            wr_odt_mw: 21.2,
            rd_term_mw: 15.5,
            wr_term_mw: 15.4,
            // Table 3, "ACT full, 7/8, ..., 1/8 row" reversed into ascending
            // granularity order.
            act_by_granularity_mw: [3.7, 6.4, 9.1, 11.6, 14.3, 16.9, 19.6, 22.2],
            ecc_x72: false,
            io_multiplier: 3.0,
            timings: DevicePowerTimings::ddr3_1600(),
        }
    }

    /// The Table 3 set on an x72 ECC DIMM (nine chips per rank).
    pub const fn paper_table3_ecc() -> Self {
        PowerParams {
            ecc_x72: true,
            ..Self::paper_table3()
        }
    }

    /// An **illustrative** DDR4-2400 parameter set: the paper publishes no
    /// DDR4 power numbers, so this scales the Table 3 dynamic powers by the
    /// VDD ratio squared (1.2 V / 1.5 V)^2 = 0.64 and keeps the structural
    /// relationships. Useful for exploring PRA's behaviour on a newer
    /// device; not a datasheet-calibrated model (documented in DESIGN.md).
    pub fn ddr4_2400_estimate() -> Self {
        let scale = |v: f64| v * 0.64;
        let base = PowerParams::paper_table3();
        let mut act = base.act_by_granularity_mw;
        for v in &mut act {
            *v = scale(*v);
        }
        PowerParams {
            pre_stby_mw: scale(base.pre_stby_mw),
            pre_pdn_mw: scale(base.pre_pdn_mw),
            act_stby_mw: scale(base.act_stby_mw),
            ref_mw: scale(base.ref_mw) * 2.0, // 8 Gb refresh moves 4x the rows
            rd_mw: scale(base.rd_mw),
            wr_mw: scale(base.wr_mw),
            rd_io_mw: scale(base.rd_io_mw),
            wr_odt_mw: scale(base.wr_odt_mw),
            rd_term_mw: scale(base.rd_term_mw),
            wr_term_mw: scale(base.wr_term_mw),
            act_by_granularity_mw: act,
            ecc_x72: false,
            io_multiplier: base.io_multiplier,
            timings: DevicePowerTimings::ddr4_2400(),
        }
    }

    /// Activation power (mW) for a `granularity_eighths/8` row activation.
    ///
    /// # Panics
    ///
    /// Panics if `granularity_eighths` is not in `1..=8`.
    pub fn act_power_mw(&self, granularity_eighths: u32) -> f64 {
        // sim-lint: allow(panic-reachability): hot-path callers pass mats.div_ceil(2) with mats clamped to 1..=16, so eighths is always 1..=8
        assert!(
            (1..=8).contains(&granularity_eighths),
            "activation granularity must be 1..=8 eighths, got {granularity_eighths}"
        );
        self.act_by_granularity_mw[(granularity_eighths - 1) as usize]
    }

    /// Energy (pJ) of one activation+precharge pair at the given granularity:
    /// `P_ACT(g) * tRC`, plus the ECC chip's always-full ninth share on an
    /// x72 DIMM.
    pub fn act_energy_pj(&self, granularity_eighths: u32) -> f64 {
        let data = self.act_power_mw(granularity_eighths) * self.timings.trc_ns;
        if self.ecc_x72 {
            data + self.act_power_mw(8) * self.timings.trc_ns / 8.0
        } else {
            data
        }
    }

    /// Scaling applied to transfer-class energies for the extra ECC chip.
    fn chip_count_scale(&self) -> f64 {
        if self.ecc_x72 {
            9.0 / 8.0
        } else {
            1.0
        }
    }

    /// Energy (pJ) of moving one full line over the bus for a read, split
    /// into (core, io, sibling-rank termination).
    pub fn read_line_energy_pj(&self) -> (f64, f64, f64) {
        let dur = self.timings.burst_cycles as f64 * self.timings.tck_ns * self.chip_count_scale();
        (
            self.rd_mw * dur,
            self.rd_io_mw * dur * self.io_multiplier,
            self.rd_term_mw * dur * self.io_multiplier,
        )
    }

    /// Energy (pJ) of a write transferring `fraction` of a line's words,
    /// split into (core, odt, sibling-rank termination). The core write
    /// energy is charged in full (the column access happens regardless);
    /// ODT and termination scale with the data actually driven.
    pub fn write_line_energy_pj(&self, fraction: f64) -> (f64, f64, f64) {
        let dur = self.timings.burst_cycles as f64 * self.timings.tck_ns;
        // The ECC chip always transfers its full byte lane, even when PRA
        // masks the data chips down to `fraction`.
        let ecc = if self.ecc_x72 { 1.0 / 8.0 } else { 0.0 };
        (
            self.wr_mw * dur * self.chip_count_scale(),
            self.wr_odt_mw * dur * (fraction + ecc) * self.io_multiplier,
            self.wr_term_mw * dur * (fraction + ecc) * self.io_multiplier,
        )
    }

    /// Energy (pJ) of one all-bank refresh: `P_REF * tRFC`.
    pub fn refresh_energy_pj(&self) -> f64 {
        self.ref_mw * self.timings.trfc_ns
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::paper_table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_eq2_reproduce_full_row_act_power() {
        let idd = IddParams::calibrated_to_paper();
        let t = DevicePowerTimings::ddr3_1600();
        let p = idd.p_act_mw(&t);
        assert!(
            (p - 22.2).abs() < 0.1,
            "Eq. (1)/(2) should give the paper's 22.2 mW, got {p:.3}"
        );
    }

    #[test]
    fn i_act_subtracts_background() {
        let idd = IddParams::calibrated_to_paper();
        let t = DevicePowerTimings::ddr3_1600();
        // Background-weighted current must lie between IDD2N and IDD3N.
        let bg = idd.idd0_ma - idd.i_act_ma(&t);
        assert!(bg > idd.idd2n_ma && bg < idd.idd3n_ma);
    }

    #[test]
    fn table3_act_array_is_monotone() {
        let p = PowerParams::paper_table3();
        for g in 1..8 {
            assert!(p.act_power_mw(g) < p.act_power_mw(g + 1));
        }
        assert_eq!(p.act_power_mw(4), 11.6, "half row");
    }

    #[test]
    fn table3_values_close_to_linear_interpolation() {
        // The published array is within ~2% of a straight line between the
        // 1/8 (3.7 mW) and full (22.2 mW) anchors — documented in DESIGN.md.
        let p = PowerParams::paper_table3();
        for g in 1..=8u32 {
            let lin = 3.7 + (22.2 - 3.7) * (g as f64 - 1.0) / 7.0;
            let rel = (p.act_power_mw(g) - lin).abs() / lin;
            assert!(
                rel < 0.03,
                "granularity {g}: {} vs linear {lin}",
                p.act_power_mw(g)
            );
        }
    }

    #[test]
    fn per_event_energies() {
        let p = PowerParams::paper_table3();
        // Full activation: 22.2 mW * 48.75 ns = 1082.25 pJ.
        assert!((p.act_energy_pj(8) - 1082.25).abs() < 1e-9);
        // 1/8 activation is much cheaper.
        assert!(p.act_energy_pj(1) < p.act_energy_pj(8) / 5.0);
        let (rd, rd_io, rd_term) = p.read_line_energy_pj();
        assert!((rd - 78.0 * 5.0).abs() < 1e-9);
        assert!((rd_io - 4.6 * 5.0 * p.io_multiplier).abs() < 1e-9);
        assert!((rd_term - 15.5 * 5.0 * p.io_multiplier).abs() < 1e-9);
        // Write I/O scales with the transferred fraction, core write doesn't.
        let (wr_full, odt_full, term_full) = p.write_line_energy_pj(1.0);
        let (wr_eighth, odt_eighth, term_eighth) = p.write_line_energy_pj(0.125);
        assert_eq!(wr_full, wr_eighth);
        assert!((odt_eighth - odt_full * 0.125).abs() < 1e-9);
        assert!((term_eighth - term_full * 0.125).abs() < 1e-9);
    }

    #[test]
    fn ecc_x72_charges_the_ninth_chip() {
        let plain = PowerParams::paper_table3();
        let ecc = PowerParams::paper_table3_ecc();
        // Full-row activation gains exactly one-eighth.
        assert!((ecc.act_energy_pj(8) - plain.act_energy_pj(8) * 9.0 / 8.0).abs() < 1e-9);
        // A 1/8 partial activation gains a *full-row* eighth (the ECC chip
        // cannot partially activate), so its relative overhead is larger.
        let overhead_full = ecc.act_energy_pj(8) / plain.act_energy_pj(8);
        let overhead_partial = ecc.act_energy_pj(1) / plain.act_energy_pj(1);
        assert!(overhead_partial > overhead_full);
        // Write I/O: the ECC byte lane always transfers.
        let (_, odt_plain, _) = plain.write_line_energy_pj(0.125);
        let (_, odt_ecc, _) = ecc.write_line_energy_pj(0.125);
        assert!(
            (odt_ecc / odt_plain - 2.0).abs() < 1e-9,
            "1/8 data + 1/8 ecc"
        );
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn act_power_rejects_zero() {
        let _ = PowerParams::paper_table3().act_power_mw(0);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn act_power_rejects_over_full() {
        let _ = PowerParams::paper_table3().act_power_mw(9);
    }
}
