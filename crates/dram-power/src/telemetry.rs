//! Streaming power telemetry: residency ledgers and windowed power rails.
//!
//! Two pieces turn the post-hoc [`EnergyAccounting`](crate::EnergyAccounting)
//! totals into a live signal:
//!
//! * [`ResidencyLedger`] — per-rank power-state residency cycles (plus
//!   per-bank open-row cycles), fed one cycle at a time from the
//!   simulator's background-power loop. Conservation invariant: for every
//!   rank, the three state counters sum exactly to the cycles ticked.
//! * [`PowerRail`] — converts the monotonically growing picojoule totals
//!   into epoch-average milliwatts per component by snapshotting the
//!   accumulator at each window close. The rail never keeps a parallel
//!   accumulator: its cumulative view is *the same `f64`s* the post-hoc
//!   breakdown reports, so streaming and post-hoc totals reconcile
//!   bit-identically by construction.

use crate::{EnergyBreakdown, PowerBreakdown, RankPowerState};

/// Upper bound on banks per rank across supported DRAM generations
/// (DDR4 has 16 bank FSMs; DDR3 uses the first 8 slots).
pub const MAX_BANKS: usize = 16;

/// Residency record of one rank: cycles spent in each background power
/// state, and per-bank open-row cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankResidency {
    /// Cycles per state, indexed by [`ResidencyLedger::state_index`]
    /// (0 = active standby, 1 = precharge standby, 2 = power-down).
    pub state_cycles: [u64; 3],
    /// Cycles each bank held an open row (closed cycles are the
    /// complement against the rank's total).
    pub bank_open_cycles: [u64; MAX_BANKS],
}

impl RankResidency {
    fn new() -> Self {
        RankResidency {
            state_cycles: [0; 3],
            bank_open_cycles: [0; MAX_BANKS],
        }
    }

    /// Total cycles this rank has been observed for (sum over states).
    pub fn total_cycles(&self) -> u64 {
        self.state_cycles.iter().sum()
    }

    /// Cycles with at least the given bank's row open, summed over banks
    /// (the bank-open cycle integral).
    pub fn open_bank_cycles(&self) -> u64 {
        self.bank_open_cycles.iter().sum()
    }
}

/// Per-rank power-state residency ledger.
///
/// The simulator calls [`ResidencyLedger::record_state`] once per rank per
/// memory cycle (and [`ResidencyLedger::record_open_banks`] with the rank's
/// open-bank bitmask when bank-level telemetry is on). Epoch publication
/// reads cumulative counters directly and takes per-window deltas through
/// [`ResidencyLedger::close_window`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidencyLedger {
    ranks: Vec<RankResidency>,
    /// Per-rank state cycles at the last window close.
    window_base: Vec<[u64; 3]>,
}

impl ResidencyLedger {
    /// A ledger for `ranks` total ranks (all counters zero).
    pub fn new(ranks: usize) -> Self {
        ResidencyLedger {
            ranks: vec![RankResidency::new(); ranks],
            window_base: vec![[0; 3]; ranks],
        }
    }

    /// Stable index of a power state into
    /// [`RankResidency::state_cycles`].
    pub fn state_index(state: RankPowerState) -> usize {
        match state {
            RankPowerState::ActiveStandby => 0,
            RankPowerState::PrechargeStandby => 1,
            RankPowerState::PowerDown => 2,
        }
    }

    /// Short lowercase label per state index, used in metric names and
    /// rendered tables (`act_stby`, `pre_stby`, `pdn`).
    pub fn state_labels() -> [&'static str; 3] {
        ["act_stby", "pre_stby", "pdn"]
    }

    /// Accounts one cycle of `rank` sitting in `state`. Out-of-range ranks
    /// are ignored (legacy callers pass 0 on single-ledger setups).
    #[inline]
    pub fn record_state(&mut self, rank: usize, state: RankPowerState) {
        if let Some(r) = self.ranks.get_mut(rank) {
            r.state_cycles[Self::state_index(state)] += 1;
        }
    }

    /// Accounts one cycle of open-row residency for every bank set in
    /// `open_mask` (bit `b` = bank `b` holds an open row).
    #[inline]
    pub fn record_open_banks(&mut self, rank: usize, open_mask: u16) {
        if open_mask == 0 {
            return;
        }
        if let Some(r) = self.ranks.get_mut(rank) {
            let mut mask = open_mask;
            while mask != 0 {
                let b = mask.trailing_zeros() as usize;
                r.bank_open_cycles[b] += 1;
                mask &= mask - 1;
            }
        }
    }

    /// Cumulative residency per rank.
    pub fn ranks(&self) -> &[RankResidency] {
        &self.ranks
    }

    /// Sum of state cycles over every rank — equals
    /// `elapsed cycles x ranks` when the ledger is ticked every cycle
    /// (the conservation invariant).
    pub fn total_state_cycles(&self) -> u64 {
        self.ranks.iter().map(RankResidency::total_cycles).sum()
    }

    /// Closes the current window: returns per-rank state-cycle deltas
    /// since the previous close and advances the window base.
    pub fn close_window(&mut self) -> Vec<[u64; 3]> {
        self.ranks
            .iter()
            .zip(self.window_base.iter_mut())
            .map(|(r, base)| {
                let delta = [
                    r.state_cycles[0] - base[0],
                    r.state_cycles[1] - base[1],
                    r.state_cycles[2] - base[2],
                ];
                *base = r.state_cycles;
                delta
            })
            .collect()
    }

    /// Resets every counter and window base to zero.
    pub fn reset(&mut self) {
        for r in &mut self.ranks {
            *r = RankResidency::new();
        }
        for base in &mut self.window_base {
            *base = [0; 3];
        }
    }
}

impl sim_snap::SnapState for ResidencyLedger {
    // The rank count is configuration; restore overlays onto a ledger
    // built for the same geometry, so the lengths must already agree.
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("residency-ledger");
        w.seq(self.ranks.len());
        for (r, base) in self.ranks.iter().zip(&self.window_base) {
            for v in r.state_cycles {
                w.u64(v);
            }
            for v in r.bank_open_cycles {
                w.u64(v);
            }
            for v in base {
                w.u64(*v);
            }
        }
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader) -> Result<(), sim_snap::SnapError> {
        r.section("residency-ledger")?;
        let n = r.seq()?;
        if n != self.ranks.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "snapshot holds {n} rank ledgers, this system has {}",
                self.ranks.len()
            )));
        }
        for (rank, base) in self.ranks.iter_mut().zip(&mut self.window_base) {
            for v in &mut rank.state_cycles {
                *v = r.u64()?;
            }
            for v in &mut rank.bank_open_cycles {
                *v = r.u64()?;
            }
            for v in base.iter_mut() {
                *v = r.u64()?;
            }
        }
        Ok(())
    }
}

impl sim_snap::SnapState for PowerRail {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("power-rail");
        let e = self.last;
        for v in [e.act_pre, e.rd, e.wr, e.rd_io, e.wr_io, e.bg, e.refresh] {
            w.f64(v);
        }
        w.f64(self.last_ns);
        w.u64(self.windows);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader) -> Result<(), sim_snap::SnapError> {
        r.section("power-rail")?;
        self.last = EnergyBreakdown {
            act_pre: r.f64()?,
            rd: r.f64()?,
            wr: r.f64()?,
            rd_io: r.f64()?,
            wr_io: r.f64()?,
            bg: r.f64()?,
            refresh: r.f64()?,
        };
        self.last_ns = r.f64()?;
        self.windows = r.u64()?;
        Ok(())
    }
}

/// Windowed picojoule-to-milliwatt converter.
///
/// At each window close the rail snapshots the cumulative
/// [`EnergyBreakdown`] and elapsed time, returning the window's delta
/// energy and its average [`PowerBreakdown`]. Because the snapshot *is*
/// the accumulator's own totals, [`PowerRail::cumulative`] after the last
/// close equals the post-hoc breakdown exactly — same bits, no parallel
/// arithmetic.
#[derive(Debug, Clone, Default)]
pub struct PowerRail {
    last: EnergyBreakdown,
    last_ns: f64,
    windows: u64,
}

impl PowerRail {
    /// A rail with no windows closed yet.
    pub fn new() -> Self {
        PowerRail::default()
    }

    /// Closes a window at the cumulative totals `total` / `elapsed_ns`:
    /// returns the window's energy delta (pJ) and average power (mW).
    /// A window with no elapsed time reports zero power.
    pub fn close_window(
        &mut self,
        total: EnergyBreakdown,
        elapsed_ns: f64,
    ) -> (EnergyBreakdown, PowerBreakdown) {
        let delta = EnergyBreakdown {
            act_pre: total.act_pre - self.last.act_pre,
            rd: total.rd - self.last.rd,
            wr: total.wr - self.last.wr,
            rd_io: total.rd_io - self.last.rd_io,
            wr_io: total.wr_io - self.last.wr_io,
            bg: total.bg - self.last.bg,
            refresh: total.refresh - self.last.refresh,
        };
        let dt = elapsed_ns - self.last_ns;
        let power = if dt > 0.0 {
            delta.to_power(dt)
        } else {
            PowerBreakdown::default()
        };
        self.last = total;
        self.last_ns = elapsed_ns;
        self.windows += 1;
        (delta, power)
    }

    /// The cumulative energy totals as of the last window close — the
    /// exact `f64`s passed in, so they compare bit-identically with the
    /// post-hoc accumulator.
    pub fn cumulative(&self) -> EnergyBreakdown {
        self.last
    }

    /// Elapsed simulated nanoseconds as of the last window close.
    pub fn elapsed_ns(&self) -> f64 {
        self.last_ns
    }

    /// Windows closed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_conserves_cycles_per_rank() {
        let mut l = ResidencyLedger::new(2);
        for cycle in 0..100u64 {
            let state = match cycle % 3 {
                0 => RankPowerState::ActiveStandby,
                1 => RankPowerState::PrechargeStandby,
                _ => RankPowerState::PowerDown,
            };
            l.record_state(0, state);
            l.record_state(1, RankPowerState::PowerDown);
        }
        assert_eq!(l.ranks()[0].total_cycles(), 100);
        assert_eq!(l.ranks()[1].total_cycles(), 100);
        assert_eq!(l.total_state_cycles(), 200);
        assert_eq!(l.ranks()[1].state_cycles, [0, 0, 100]);
    }

    #[test]
    fn ledger_window_deltas_sum_to_cumulative() {
        let mut l = ResidencyLedger::new(1);
        for _ in 0..10 {
            l.record_state(0, RankPowerState::ActiveStandby);
        }
        let w0 = l.close_window();
        for _ in 0..5 {
            l.record_state(0, RankPowerState::PrechargeStandby);
        }
        let w1 = l.close_window();
        assert_eq!(w0[0], [10, 0, 0]);
        assert_eq!(w1[0], [0, 5, 0]);
        assert_eq!(l.ranks()[0].state_cycles, [10, 5, 0]);
    }

    #[test]
    fn ledger_bank_open_cycles_follow_mask() {
        let mut l = ResidencyLedger::new(1);
        l.record_open_banks(0, 0b101);
        l.record_open_banks(0, 0b001);
        l.record_open_banks(0, 0);
        assert_eq!(l.ranks()[0].bank_open_cycles[0], 2);
        assert_eq!(l.ranks()[0].bank_open_cycles[1], 0);
        assert_eq!(l.ranks()[0].bank_open_cycles[2], 1);
        assert_eq!(l.ranks()[0].open_bank_cycles(), 3);
    }

    #[test]
    fn ledger_ignores_out_of_range_rank() {
        let mut l = ResidencyLedger::new(1);
        l.record_state(7, RankPowerState::PowerDown);
        l.record_open_banks(7, 0xFF);
        assert_eq!(l.total_state_cycles(), 0);
    }

    #[test]
    fn rail_windows_average_the_delta() {
        let mut rail = PowerRail::new();
        let mut total = EnergyBreakdown {
            act_pre: 1000.0, // 1000 pJ over 100 ns = 10 mW
            ..EnergyBreakdown::default()
        };
        let (delta, power) = rail.close_window(total, 100.0);
        assert_eq!(delta.act_pre, 1000.0);
        assert!((power.act_pre - 10.0).abs() < 1e-12);
        // Second window: another 500 pJ over 50 ns = 10 mW again.
        total.act_pre = 1500.0;
        let (delta, power) = rail.close_window(total, 150.0);
        assert_eq!(delta.act_pre, 500.0);
        assert!((power.act_pre - 10.0).abs() < 1e-12);
        assert_eq!(rail.windows(), 2);
    }

    #[test]
    fn rail_cumulative_is_bit_identical_to_the_last_total() {
        let mut rail = PowerRail::new();
        let total = EnergyBreakdown {
            act_pre: 0.1 + 0.2, // deliberately not exactly 0.3
            rd: 1.0 / 3.0,
            wr: 2.5,
            rd_io: 0.7,
            wr_io: 0.0,
            bg: 123.456,
            refresh: 33600.0,
        };
        rail.close_window(total, 10.0);
        let cum = rail.cumulative();
        assert_eq!(cum.act_pre.to_bits(), total.act_pre.to_bits());
        assert_eq!(cum.rd.to_bits(), total.rd.to_bits());
        assert_eq!(cum.total().to_bits(), total.total().to_bits());
    }

    #[test]
    fn rail_zero_length_window_reports_zero_power() {
        let mut rail = PowerRail::new();
        let total = EnergyBreakdown {
            bg: 10.0,
            ..Default::default()
        };
        rail.close_window(total, 5.0);
        let (delta, power) = rail.close_window(total, 5.0);
        assert_eq!(delta.total(), 0.0);
        assert_eq!(power.total(), 0.0);
    }
}
