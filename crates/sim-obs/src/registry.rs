//! The metrics registry: named counters, gauges and histograms with
//! epoch-delta snapshots.
//!
//! Names follow a dotted `component.noun[.qualifier]` convention
//! (`dram.activations`, `cache.l1_hits`, `dram.read_latency`). Registration
//! returns a copyable [`MetricId`]; the hot path updates by id (a vector
//! index), never by name.
//!
//! Counters are monotonically non-decreasing totals; [`MetricsRegistry::
//! epoch_snapshot`] reports the *delta* since the previous snapshot, so
//! summing a run's epoch records reproduces its end-of-run aggregates
//! exactly. Gauges snapshot their current value; histograms report delta
//! count/sum plus cumulative quantile estimates.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::hist::Log2Histogram;

/// Handle to a registered metric (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(usize);

#[derive(Debug, Clone)]
enum Slot {
    Counter {
        value: u64,
        prev: u64,
    },
    Gauge {
        value: f64,
    },
    Histogram {
        hist: Box<Log2Histogram>,
        prev_count: u64,
        prev_sum: u64,
    },
}

impl Slot {
    fn kind_name(&self) -> &'static str {
        match self {
            Slot::Counter { .. } => "counter",
            Slot::Gauge { .. } => "gauge",
            Slot::Histogram { .. } => "histogram",
        }
    }
}

/// Per-histogram entry in an [`EpochSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramDelta {
    /// Samples recorded during the epoch.
    pub count: u64,
    /// Sum of samples recorded during the epoch.
    pub sum: u64,
    /// Cumulative (run-so-far) median estimate.
    pub p50: u64,
    /// Cumulative 95th-percentile estimate.
    pub p95: u64,
    /// Cumulative 99th-percentile estimate.
    pub p99: u64,
}

/// One serialized epoch: counter deltas, gauge values and histogram deltas
/// between two points of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Zero-based epoch number.
    pub index: u64,
    /// First cycle covered (inclusive).
    pub start_cycle: u64,
    /// Last cycle covered (exclusive).
    pub end_cycle: u64,
    /// `(name, delta)` for every registered counter, in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, in name order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, delta)` for every registered histogram, in name order.
    pub histograms: Vec<(String, HistogramDelta)>,
}

impl EpochSnapshot {
    /// Serializes the snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"epoch\":{},\"start_cycle\":{},\"end_cycle\":{},\"counters\":{{",
            self.index, self.start_cycle, self.end_cycle
        );
        for (i, (name, delta)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{name}\":{delta}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{name}\":{value}");
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.p50, h.p95, h.p99
            );
        }
        s.push_str("}}");
        s
    }
}

/// A registry of named metrics. See the module docs for conventions.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    slots: Vec<(String, Slot)>,
    index: HashMap<String, MetricId>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, slot: Slot) -> MetricId {
        if let Some(&id) = self.index.get(name) {
            let existing = self.slots[id.0].1.kind_name();
            // sim-lint: allow(panic-reachability): every hot-path registration site binds one fixed name to one fixed kind, so a re-registration always agrees
            assert!(
                existing == slot.kind_name(),
                "metric `{name}` already registered as a {existing}"
            );
            return id;
        }
        let id = MetricId(self.slots.len());
        self.slots.push((name.to_string(), slot));
        self.index.insert(name.to_string(), id);
        id
    }

    /// Registers (or looks up) a monotonic counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered with a different kind.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, Slot::Counter { value: 0, prev: 0 })
    }

    /// Registers (or looks up) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered with a different kind.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, Slot::Gauge { value: 0.0 })
    }

    /// Registers (or looks up) a log2 histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered with a different kind.
    pub fn histogram(&mut self, name: &str) -> MetricId {
        self.register(
            name,
            Slot::Histogram {
                hist: Box::new(Log2Histogram::new()),
                prev_count: 0,
                prev_sum: 0,
            },
        )
    }

    /// Adds `delta` to a counter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        match &mut self.slots[id.0].1 {
            Slot::Counter { value, .. } => *value += delta,
            other => panic!("add on a {}", other.kind_name()),
        }
    }

    /// Publishes an absolute counter total (used to mirror externally
    /// maintained aggregates like `DramStats` fields).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a counter or `total` would move it backwards.
    #[inline]
    pub fn set_counter(&mut self, id: MetricId, total: u64) {
        match &mut self.slots[id.0].1 {
            Slot::Counter { value, .. } => {
                // sim-lint: allow(panic-reachability): hot-path publishers mirror monotonically increasing ledgers through counter-typed ids
                assert!(
                    total >= *value,
                    "counter moving backwards: {total} < {value}"
                );
                *value = total;
            }
            // sim-lint: allow(panic-reachability): MetricId is only minted by this registry with the kind its call site declared
            other => panic!("set_counter on a {}", other.kind_name()),
        }
    }

    /// Sets a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        match &mut self.slots[id.0].1 {
            Slot::Gauge { value: v } => *v = value,
            // sim-lint: allow(panic-reachability): MetricId is only minted by this registry with the kind its call site declared
            other => panic!("set_gauge on a {}", other.kind_name()),
        }
    }

    /// Records a histogram sample.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a histogram.
    #[inline]
    pub fn observe(&mut self, id: MetricId, sample: u64) {
        match &mut self.slots[id.0].1 {
            Slot::Histogram { hist, .. } => hist.record(sample),
            other => panic!("observe on a {}", other.kind_name()),
        }
    }

    /// Current total of a counter by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.index.get(name).map(|id| &self.slots[id.0].1) {
            Some(Slot::Counter { value, .. }) => Some(*value),
            _ => None,
        }
    }

    /// Current value of a gauge by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.index.get(name).map(|id| &self.slots[id.0].1) {
            Some(Slot::Gauge { value }) => Some(*value),
            _ => None,
        }
    }

    /// Read access to a histogram by name.
    pub fn histogram_value(&self, name: &str) -> Option<&Log2Histogram> {
        match self.index.get(name).map(|id| &self.slots[id.0].1) {
            Some(Slot::Histogram { hist, .. }) => Some(hist),
            _ => None,
        }
    }

    /// All registered metric names with their kinds, in name order.
    pub fn names(&self) -> Vec<(String, &'static str)> {
        let mut out: Vec<(String, &'static str)> = self
            .slots
            .iter()
            .map(|(n, s)| (n.clone(), s.kind_name()))
            .collect();
        out.sort();
        out
    }

    /// Takes an epoch snapshot covering `[start_cycle, end_cycle)`:
    /// counters and histograms report deltas since the previous snapshot
    /// (and advance their baseline), gauges report current values.
    pub fn epoch_snapshot(
        &mut self,
        index: u64,
        start_cycle: u64,
        end_cycle: u64,
    ) -> EpochSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, slot) in &mut self.slots {
            match slot {
                Slot::Counter { value, prev } => {
                    counters.push((name.clone(), *value - *prev));
                    *prev = *value;
                }
                Slot::Gauge { value } => gauges.push((name.clone(), *value)),
                Slot::Histogram {
                    hist,
                    prev_count,
                    prev_sum,
                } => {
                    histograms.push((
                        name.clone(),
                        HistogramDelta {
                            count: hist.count() - *prev_count,
                            sum: hist.sum() - *prev_sum,
                            p50: hist.p50(),
                            p95: hist.p95(),
                            p99: hist.p99(),
                        },
                    ));
                    *prev_count = hist.count();
                    *prev_sum = hist.sum();
                }
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        EpochSnapshot {
            index,
            start_cycle,
            end_cycle,
            counters,
            gauges,
            histograms,
        }
    }
}

impl sim_snap::SnapState for MetricsRegistry {
    // Slots travel in registration order, which is the deterministic
    // construction order of the instrumented components — so a restore
    // rebuilds the identical slot vector and every `MetricId` minted by
    // the rebuilt components still indexes its own metric.
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("metrics-registry");
        w.seq(self.slots.len());
        for (name, slot) in &self.slots {
            w.str(name);
            match slot {
                Slot::Counter { value, prev } => {
                    w.u8(0);
                    w.u64(*value);
                    w.u64(*prev);
                }
                Slot::Gauge { value } => {
                    w.u8(1);
                    w.f64(*value);
                }
                Slot::Histogram {
                    hist,
                    prev_count,
                    prev_sum,
                } => {
                    w.u8(2);
                    hist.snap_save(w);
                    w.u64(*prev_count);
                    w.u64(*prev_sum);
                }
            }
        }
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader) -> Result<(), sim_snap::SnapError> {
        r.section("metrics-registry")?;
        self.slots.clear();
        self.index.clear();
        for _ in 0..r.seq()? {
            let name = r.str()?;
            let slot = match r.u8()? {
                0 => Slot::Counter {
                    value: r.u64()?,
                    prev: r.u64()?,
                },
                1 => Slot::Gauge { value: r.f64()? },
                2 => {
                    let mut hist = Box::new(Log2Histogram::new());
                    hist.snap_load(r)?;
                    Slot::Histogram {
                        hist,
                        prev_count: r.u64()?,
                        prev_sum: r.u64()?,
                    }
                }
                other => {
                    return Err(sim_snap::SnapError::Decode(format!(
                        "unknown metric slot kind tag {other}"
                    )))
                }
            };
            let id = MetricId(self.slots.len());
            self.index.insert(name.clone(), id);
            self.slots.push((name, slot));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_deltas() {
        let mut r = MetricsRegistry::new();
        let acts = r.counter("dram.activations");
        r.add(acts, 3);
        let s0 = r.epoch_snapshot(0, 0, 100);
        r.add(acts, 5);
        let s1 = r.epoch_snapshot(1, 100, 200);
        assert_eq!(s0.counters, vec![("dram.activations".to_string(), 3)]);
        assert_eq!(s1.counters, vec![("dram.activations".to_string(), 5)]);
        assert_eq!(r.counter_value("dram.activations"), Some(8));
        // Deltas sum to the aggregate.
        let summed: u64 = s0.counters[0].1 + s1.counters[0].1;
        assert_eq!(summed, 8);
    }

    #[test]
    fn set_counter_mirrors_external_totals() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("dram.reads");
        r.set_counter(c, 10);
        let s0 = r.epoch_snapshot(0, 0, 1);
        r.set_counter(c, 25);
        let s1 = r.epoch_snapshot(1, 1, 2);
        assert_eq!(s0.counters[0].1, 10);
        assert_eq!(s1.counters[0].1, 15);
    }

    #[test]
    #[should_panic(expected = "moving backwards")]
    fn counters_are_monotonic() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("x");
        r.set_counter(c, 5);
        r.set_counter(c, 4);
    }

    #[test]
    fn registration_is_idempotent_but_kind_checked() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("dram.acts");
        let b = r.counter("dram.acts");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let mut r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_epoch_deltas() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("dram.read_latency");
        r.observe(h, 10);
        r.observe(h, 20);
        let s0 = r.epoch_snapshot(0, 0, 50);
        r.observe(h, 40);
        let s1 = r.epoch_snapshot(1, 50, 100);
        assert_eq!(s0.histograms[0].1.count, 2);
        assert_eq!(s0.histograms[0].1.sum, 30);
        assert_eq!(s1.histograms[0].1.count, 1);
        assert_eq!(s1.histograms[0].1.sum, 40);
        let total: u64 = s0.histograms[0].1.count + s1.histograms[0].1.count;
        assert_eq!(
            total,
            r.histogram_value("dram.read_latency").unwrap().count()
        );
    }

    #[test]
    fn gauges_report_current_value() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("dram.read_queue_depth");
        r.set_gauge(g, 7.5);
        let s = r.epoch_snapshot(0, 0, 1);
        assert_eq!(s.gauges, vec![("dram.read_queue_depth".to_string(), 7.5)]);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("dram.acts");
        let g = r.gauge("q.depth");
        let h = r.histogram("lat");
        r.add(c, 2);
        r.set_gauge(g, 1.5);
        r.observe(h, 9);
        let json = r.epoch_snapshot(3, 100, 200).to_json();
        assert_eq!(
            json,
            "{\"epoch\":3,\"start_cycle\":100,\"end_cycle\":200,\
             \"counters\":{\"dram.acts\":2},\"gauges\":{\"q.depth\":1.5},\
             \"histograms\":{\"lat\":{\"count\":1,\"sum\":9,\"p50\":9,\"p95\":9,\"p99\":9}}}"
        );
    }
}
