//! Trace sinks: where emitted events go.
//!
//! The simulators hold a [`SinkHandle`] and call [`SinkHandle::emit`] with a
//! closure; when the handle wraps a [`NullSink`] the closure is never run,
//! so a disabled trace costs one predictable branch per would-be event.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::event::TraceEvent;

/// A consumer of trace events.
pub trait TraceSink {
    /// Receives one event.
    fn emit(&mut self, event: &TraceEvent);

    /// Whether emitting is worthwhile at all. [`SinkHandle`] caches this at
    /// attach time, so it must be constant for the sink's lifetime.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// Discards everything; reports itself disabled so event construction is
/// skipped entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the most recent `capacity` events in memory — the "flight
/// recorder" used by tests and interactive debugging.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    total: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Events emitted over the sink's lifetime (retained or not).
    pub fn total_emitted(&self) -> u64 {
        self.total
    }

    /// Events that fell off the ring.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(*event);
        self.total += 1;
    }
}

/// Streams events as JSON Lines to any writer (one object per line).
pub struct JsonlSink<W: Write> {
    out: W,
    line: String,
    count: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            line: String::with_capacity(128),
            count: 0,
        }
    }

    /// Events written so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        self.line.clear();
        event.write_json(&mut self.line);
        self.line.push('\n');
        // A full disk mid-trace should not abort the simulation; the final
        // flush (or drop) surfaces persistent failures via best effort.
        let _ = self.out.write_all(self.line.as_bytes());
        self.count += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

/// Sharing adapter: lets several components (memory system, cache
/// hierarchy, CPU) feed one sink. Clone the `Rc` and hand each component
/// its own boxed copy.
impl<S: TraceSink> TraceSink for Rc<RefCell<S>> {
    fn emit(&mut self, event: &TraceEvent) {
        self.borrow_mut().emit(event);
    }

    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }

    fn flush(&mut self) {
        self.borrow_mut().flush();
    }
}

/// A component's handle on its (possibly absent) trace sink.
///
/// The `enabled` flag is cached at attach time so the per-event fast path
/// is a single branch; event construction happens inside a closure that is
/// skipped when disabled.
pub struct SinkHandle {
    sink: Box<dyn TraceSink>,
    enabled: bool,
}

impl SinkHandle {
    /// A handle that drops everything at zero cost.
    pub fn disabled() -> Self {
        SinkHandle {
            sink: Box::new(NullSink),
            enabled: false,
        }
    }

    /// Wraps a sink, caching its `enabled` state.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        let enabled = sink.enabled();
        SinkHandle { sink, enabled }
    }

    /// Whether events will actually be recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.enabled
    }

    /// Emits the event produced by `build`, or does nothing when disabled
    /// (in which case `build` is never called).
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.sink.emit(&build());
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::disabled()
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(cycle: u64) -> TraceEvent {
        TraceEvent::Activate {
            cycle,
            channel: 0,
            rank: 0,
            bank: 0,
            row: 1,
            mats: 16,
            mask: 0xFF,
        }
    }

    #[test]
    fn null_sink_reports_disabled_and_skips_closure() {
        let mut handle = SinkHandle::disabled();
        let mut called = false;
        handle.emit(|| {
            called = true;
            act(0)
        });
        assert!(!handle.tracing());
        assert!(!called, "disabled handle must not build events");
    }

    #[test]
    fn ring_sink_caps_and_counts() {
        let mut ring = RingSink::new(3);
        for c in 0..5 {
            ring.emit(&act(c));
        }
        assert_eq!(ring.total_emitted(), 5);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<u64> = ring.events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest events dropped first");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&act(9));
        sink.emit(&TraceEvent::Refresh {
            cycle: 10,
            channel: 1,
            rank: 0,
        });
        assert_eq!(sink.count(), 2);
        let text = String::from_utf8(sink.out.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"ACT\""));
        assert!(lines[1].contains("\"kind\":\"REF\""));
    }

    #[test]
    fn shared_sink_feeds_one_ring() {
        let ring = Rc::new(RefCell::new(RingSink::new(8)));
        let mut a = SinkHandle::new(Box::new(Rc::clone(&ring)));
        let mut b = SinkHandle::new(Box::new(Rc::clone(&ring)));
        a.emit(|| act(1));
        b.emit(|| act(2));
        assert_eq!(ring.borrow().total_emitted(), 2);
    }
}
