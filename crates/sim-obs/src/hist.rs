//! Log2-bucketed streaming histograms.
//!
//! Values are binned by bit width: bucket 0 holds the value `0`, bucket
//! `b >= 1` holds `[2^(b-1), 2^b)`. That gives constant-time recording, 65
//! fixed buckets covering the full `u64` range, and quantile estimates with
//! at most a 2x relative error — plenty for latency percentiles where the
//! interesting differences are multiples.

/// A streaming histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive `(low, high)` value range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 64`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        // sim-lint: allow(panic-reachability): the only hot-path caller (quantile) iterates bucket indices 0..=64 by construction
        assert!(index <= 64, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index by [`Log2Histogram::bucket_index`]).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.counts
    }

    /// An upper bound for the `q`-quantile (`0.0..=1.0`): the inclusive
    /// upper edge of the bucket containing the sample of that rank, clamped
    /// to the observed maximum. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        // sim-lint: allow(panic-reachability): hot-path callers are p50/p95/p99, which pass compile-time constants inside 0.0..=1.0
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        // Rank of the requested sample, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (upper bucket edge).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl sim_snap::SnapState for Log2Histogram {
    // The raw `min` field travels as-is (u64::MAX when empty), not the
    // clamped value `min()` reports — restoring the clamp would corrupt
    // the first post-restore `record()`.
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        for &c in &self.counts {
            w.u64(c);
        }
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader) -> Result<(), sim_snap::SnapError> {
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        self.count = r.u64()?;
        self.sum = r.u64()?;
        self.min = r.u64()?;
        self.max = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(255), 8);
        assert_eq!(Log2Histogram::bucket_index(256), 9);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        // Bounds are consistent with the index mapping at every edge.
        for b in 0..=64 {
            let (lo, hi) = Log2Histogram::bucket_bounds(b);
            assert_eq!(Log2Histogram::bucket_index(lo), b);
            assert_eq!(Log2Histogram::bucket_index(hi), b);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn counts_sums_and_extremes() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 5, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 203.0).abs() < 1e-12);
    }

    #[test]
    fn p99_on_known_distribution() {
        // 99 samples of 10 and one of 1000: p50/p95 sit in 10's bucket
        // (upper edge 15), p99 must not yet reach the outlier, p100 must.
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p95(), 15);
        assert_eq!(h.p99(), 15);
        assert_eq!(h.quantile(1.0), 1000, "max clamps the top bucket edge");
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut last = 0;
        for step in 0..=20 {
            let q = f64::from(step) / 20.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantiles must be monotone");
            assert!(v <= h.max());
            last = v;
        }
        // The estimate brackets the true quantile within one power of two.
        let true_p50 = 500u64;
        assert!(h.p50() >= true_p50 && h.p50() <= true_p50 * 2);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_joint_recording() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut joint = Log2Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 3);
            }
            joint.record(if v % 2 == 0 { v * 7 } else { v * 3 });
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }
}
