//! Observability layer for the PRA simulation stack.
//!
//! Three pieces, designed to cost nothing when switched off:
//!
//! * **Event tracing** — typed [`TraceEvent`]s (DRAM commands with cycle,
//!   channel/rank/bank, row and PRA mat-mask; cache fills/writebacks; core
//!   stalls) flow through a [`TraceSink`]: [`NullSink`] (default, disabled),
//!   [`RingSink`] (in-memory flight recorder) or [`JsonlSink`] (JSON Lines
//!   file).
//! * **Metrics registry** — [`MetricsRegistry`] holds named counters,
//!   gauges and [`Log2Histogram`]s (read-latency p50/p95/p99, queue
//!   occupancy, activation granularity) under a dotted naming convention.
//! * **Epoch snapshots** — every N cycles the [`Observer`] serializes a
//!   delta record ([`EpochSnapshot`]); counter deltas across a run sum to
//!   its end-of-run aggregates, giving a time series chartable by the
//!   `bench` crate and inspectable via `pra trace`.
//!
//! # Example
//!
//! ```
//! use sim_obs::{Observer, RingSink, TraceEvent};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let ring = Rc::new(RefCell::new(RingSink::new(1024)));
//! let mut obs = Observer::disabled();
//! obs.set_sink(Box::new(Rc::clone(&ring)));
//! obs.set_epochs(1000, None);
//!
//! let acts = obs.registry.counter("dram.activations");
//! obs.registry.add(acts, 1);
//! obs.emit(|| TraceEvent::Activate {
//!     cycle: 12, channel: 0, rank: 0, bank: 2, row: 40, mats: 4, mask: 0x0F,
//! });
//! obs.end_epoch(1000);
//! assert_eq!(ring.borrow().total_emitted(), 1);
//! assert_eq!(obs.snapshots()[0].counters[0], ("dram.activations".into(), 1));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod hist;
mod registry;
mod sink;

pub use event::{StallKind, TraceEvent, FULL_ROW_MATS};
pub use hist::Log2Histogram;
pub use registry::{EpochSnapshot, HistogramDelta, MetricId, MetricsRegistry};
pub use sink::{JsonlSink, NullSink, RingSink, SinkHandle, TraceSink};

use std::fmt;
use std::io::Write;

/// A component's complete observability state: one trace sink, one metrics
/// registry, and the epoch-snapshot machinery.
///
/// The default ([`Observer::disabled`]) traces nothing and snapshots
/// nothing; the registry still exists so instrumentation code never has to
/// branch, but with no epochs and no sink the per-event cost is one branch.
pub struct Observer {
    sink: SinkHandle,
    /// The metrics registry. Public: instrumentation registers ids at
    /// construction time and updates through them on the hot path.
    pub registry: MetricsRegistry,
    epoch_cycles: u64,
    metrics_out: Option<Box<dyn Write>>,
    snapshots: Vec<EpochSnapshot>,
    epoch_index: u64,
    epoch_start: u64,
}

impl Observer {
    /// An observer with a [`NullSink`] and epoch snapshots off.
    pub fn disabled() -> Self {
        Observer {
            sink: SinkHandle::disabled(),
            registry: MetricsRegistry::new(),
            epoch_cycles: 0,
            metrics_out: None,
            snapshots: Vec::new(),
            epoch_index: 0,
            epoch_start: 0,
        }
    }

    /// Attaches a trace sink (replacing the current one).
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = SinkHandle::new(sink);
    }

    /// Enables epoch snapshots every `cycles` cycles (0 disables), with an
    /// optional JSONL writer receiving one record per epoch. Snapshots are
    /// always also retained in memory (see [`Observer::snapshots`]).
    pub fn set_epochs(&mut self, cycles: u64, out: Option<Box<dyn Write>>) {
        self.epoch_cycles = cycles;
        self.metrics_out = out;
    }

    /// Whether a sink is recording events.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.sink.tracing()
    }

    /// Emits the event produced by `build` if tracing is enabled;
    /// otherwise `build` is never called.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceEvent) {
        self.sink.emit(build);
    }

    /// Epoch length in cycles (0 = snapshots disabled).
    pub fn epoch_cycles(&self) -> u64 {
        self.epoch_cycles
    }

    /// `true` when the cycle just completed closes an epoch. Call with the
    /// count of *completed* cycles.
    #[inline]
    pub fn epoch_due(&self, completed_cycles: u64) -> bool {
        self.epoch_cycles != 0 && completed_cycles.is_multiple_of(self.epoch_cycles)
    }

    /// Closes the current epoch at `end_cycle`: takes a delta snapshot,
    /// retains it and writes it to the metrics writer (if any).
    pub fn end_epoch(&mut self, end_cycle: u64) {
        let snap = self
            .registry
            .epoch_snapshot(self.epoch_index, self.epoch_start, end_cycle);
        if let Some(out) = &mut self.metrics_out {
            let mut line = snap.to_json();
            line.push('\n');
            let _ = out.write_all(line.as_bytes());
        }
        self.snapshots.push(snap);
        self.epoch_index += 1;
        self.epoch_start = end_cycle;
    }

    /// Finishes observation at `end_cycle`: closes a final partial epoch if
    /// snapshots are enabled and any cycles elapsed since the last one,
    /// then flushes the sink and the metrics writer.
    pub fn finish(&mut self, end_cycle: u64) {
        if self.epoch_cycles != 0 && end_cycle > self.epoch_start {
            self.end_epoch(end_cycle);
        }
        self.sink.flush();
        if let Some(out) = &mut self.metrics_out {
            let _ = out.flush();
        }
    }

    /// Epoch snapshots taken so far, oldest first.
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        &self.snapshots
    }

    /// Index of the next epoch to close (= epochs closed so far).
    pub fn epoch_index(&self) -> u64 {
        self.epoch_index
    }
}

impl sim_snap::SnapState for Observer {
    // Mutable observation state only: the registry contents, the retained
    // epoch snapshots and the epoch cursor. The sink, the metrics writer
    // and `epoch_cycles` are configuration — the restore path rebuilds
    // them from the same builder, and trace/metrics *output* deliberately
    // restarts at the restore point (documented in DESIGN.md §11).
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("observer");
        self.registry.snap_save(w);
        w.seq(self.snapshots.len());
        for snap in &self.snapshots {
            w.u64(snap.index);
            w.u64(snap.start_cycle);
            w.u64(snap.end_cycle);
            w.seq(snap.counters.len());
            for (name, delta) in &snap.counters {
                w.str(name);
                w.u64(*delta);
            }
            w.seq(snap.gauges.len());
            for (name, value) in &snap.gauges {
                w.str(name);
                w.f64(*value);
            }
            w.seq(snap.histograms.len());
            for (name, h) in &snap.histograms {
                w.str(name);
                w.u64(h.count);
                w.u64(h.sum);
                w.u64(h.p50);
                w.u64(h.p95);
                w.u64(h.p99);
            }
        }
        w.u64(self.epoch_index);
        w.u64(self.epoch_start);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader) -> Result<(), sim_snap::SnapError> {
        r.section("observer")?;
        self.registry.snap_load(r)?;
        self.snapshots.clear();
        for _ in 0..r.seq()? {
            let index = r.u64()?;
            let start_cycle = r.u64()?;
            let end_cycle = r.u64()?;
            let mut counters = Vec::new();
            for _ in 0..r.seq()? {
                let name = r.str()?;
                counters.push((name, r.u64()?));
            }
            let mut gauges = Vec::new();
            for _ in 0..r.seq()? {
                let name = r.str()?;
                gauges.push((name, r.f64()?));
            }
            let mut histograms = Vec::new();
            for _ in 0..r.seq()? {
                let name = r.str()?;
                histograms.push((
                    name,
                    HistogramDelta {
                        count: r.u64()?,
                        sum: r.u64()?,
                        p50: r.u64()?,
                        p95: r.u64()?,
                        p99: r.u64()?,
                    },
                ));
            }
            self.snapshots.push(EpochSnapshot {
                index,
                start_cycle,
                end_cycle,
                counters,
                gauges,
                histograms,
            });
        }
        self.epoch_index = r.u64()?;
        self.epoch_start = r.u64()?;
        Ok(())
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::disabled()
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("tracing", &self.tracing())
            .field("epoch_cycles", &self.epoch_cycles)
            .field("epochs_taken", &self.epoch_index)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_emits_nothing() {
        let mut obs = Observer::disabled();
        let mut built = false;
        obs.emit(|| {
            built = true;
            TraceEvent::DrainEnter {
                cycle: 0,
                channel: 0,
            }
        });
        assert!(!built);
        assert!(!obs.tracing());
        assert!(!obs.epoch_due(1000));
    }

    #[test]
    fn epoch_cadence_and_final_partial_epoch() {
        let mut obs = Observer::disabled();
        obs.set_epochs(100, None);
        let c = obs.registry.counter("x");
        assert!(obs.epoch_due(100));
        assert!(!obs.epoch_due(150));
        obs.registry.add(c, 1);
        obs.end_epoch(100);
        obs.registry.add(c, 2);
        obs.finish(150); // partial epoch [100, 150)
        let snaps = obs.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!((snaps[0].start_cycle, snaps[0].end_cycle), (0, 100));
        assert_eq!((snaps[1].start_cycle, snaps[1].end_cycle), (100, 150));
        let total: u64 = snaps.iter().map(|s| s.counters[0].1).sum();
        assert_eq!(total, 3, "epoch deltas sum to the aggregate");
    }

    #[test]
    fn finish_without_epochs_is_a_noop_snapshotwise() {
        let mut obs = Observer::disabled();
        obs.finish(500);
        assert!(obs.snapshots().is_empty());
    }

    #[test]
    fn observer_snapshot_roundtrip_restores_registry_and_epochs() {
        use sim_snap::{SnapReader, SnapState, SnapWriter};

        let mut reference = Observer::disabled();
        reference.set_epochs(100, None);
        let c = reference.registry.counter("dram.acts");
        let g = reference.registry.gauge("q.depth");
        let h = reference.registry.histogram("lat");
        reference.registry.add(c, 7);
        reference.registry.set_gauge(g, 2.5);
        reference.registry.observe(h, 40);
        reference.end_epoch(100);
        reference.registry.add(c, 3);

        let mut w = SnapWriter::new();
        reference.snap_save(&mut w);
        let payload = w.into_bytes();

        // Restore onto a freshly-built observer whose registry already
        // holds the construction-time registrations (the overlay path).
        let mut restored = Observer::disabled();
        restored.set_epochs(100, None);
        restored.registry.counter("dram.acts");
        restored.registry.gauge("q.depth");
        restored.registry.histogram("lat");
        let mut r = SnapReader::new(&payload);
        restored.snap_load(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.registry.counter_value("dram.acts"), Some(10));
        assert_eq!(restored.registry.gauge_value("q.depth"), Some(2.5));
        assert_eq!(restored.snapshots(), reference.snapshots());
        assert_eq!(restored.epoch_index(), 1);
        // The rebuilt index maps the old ids onto the same slots, and the
        // next epoch continues the delta chain exactly.
        let c2 = restored.registry.counter("dram.acts");
        restored.registry.add(c2, 1);
        reference.registry.add(c, 1);
        restored.end_epoch(200);
        reference.end_epoch(200);
        assert_eq!(restored.snapshots(), reference.snapshots());
    }

    #[test]
    fn metrics_writer_receives_jsonl() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // A tiny Rc-backed writer so the test can inspect what was written.
        #[derive(Clone)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let store = Rc::new(RefCell::new(Vec::new()));
        let mut obs = Observer::disabled();
        obs.set_epochs(10, Some(Box::new(Shared(Rc::clone(&store)))));
        let c = obs.registry.counter("dram.acts");
        obs.registry.add(c, 4);
        obs.end_epoch(10);
        obs.finish(10);
        let text = String::from_utf8(store.borrow().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"dram.acts\":4"), "{}", lines[0]);
    }
}
