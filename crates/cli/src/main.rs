//! The `pra` binary: thin shim over [`pra_cli::dispatch`].
#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pra_cli::dispatch(args) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            if error.kind == pra_cli::ErrorKind::CampaignFailures {
                // The campaign itself completed; its summary is the normal
                // output. Only the exit code marks the journaled failures.
                print!("{error}");
            } else {
                eprintln!("error: {error}");
            }
            std::process::exit(error.kind.exit_code());
        }
    }
}
