//! The `pra` binary: thin shim over [`pra_cli::dispatch`].
#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pra_cli::dispatch(args) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}
