//! Implementation of the `pra` command-line tool: argument parsing and the
//! run/compare/trace/list subcommands. Lives in a library so the logic is
//! unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;

use std::path::{Path, PathBuf};

use dram_sim::PagePolicy;
use pra_core::{Report, Scheme, SimBuilder, SimError};
use sim_fault::FaultPlan;
use sim_harness::{load_journal, run_campaign, Campaign, CampaignOptions, RunStatus};
use workloads::BenchProfile;

/// Failure category, mapped one-to-one onto the process exit code so
/// scripts can branch on *why* `pra` failed without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad options, unknown names, unreadable inputs — exit 2.
    Config,
    /// A protocol or liveness violation stopped a simulation — exit 3.
    Liveness,
    /// A campaign ran to completion but journaled failed, hung or
    /// nondeterministic runs — exit 4.
    CampaignFailures,
}

impl ErrorKind {
    /// The process exit code for this category.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorKind::Config => 2,
            ErrorKind::Liveness => 3,
            ErrorKind::CampaignFailures => 4,
        }
    }
}

/// Errors surfaced to the user with a non-zero exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// The user-facing message.
    pub message: String,
    /// Which exit code the process should use.
    pub kind: ErrorKind,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        let kind = match &e {
            SimError::Protocol(_) | SimError::Liveness(_) => ErrorKind::Liveness,
            _ => ErrorKind::Config,
        };
        CliError {
            message: e.to_string(),
            kind,
        }
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError {
        message: msg.into(),
        kind: ErrorKind::Config,
    }
}

/// Flags that take no value; `--flag` alone sets them.
const BOOLEAN_FLAGS: &[&str] = &["verify-determinism", "recovery"];

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Options {
    /// Parses an argument list (after the subcommand).
    ///
    /// # Errors
    ///
    /// Rejects a trailing `--key` with no value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut out = Options::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    out.flags.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| err(format!("--{key} needs a value")))?;
                out.flags.insert(key.to_string(), value);
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean flag (see [`BOOLEAN_FLAGS`]) was given.
    pub fn get_bool(&self, key: &str) -> bool {
        BOOLEAN_FLAGS.contains(&key) && self.flags.contains_key(key)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Reports unparseable values with the flag name.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key}: invalid number {v:?}"))),
        }
    }
}

/// Resolves a scheme name (case-insensitive; accepts the paper's spellings
/// and compact aliases).
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn parse_scheme(name: &str) -> Result<Scheme, CliError> {
    match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "baseline" | "base" | "conventional" => Ok(Scheme::Baseline),
        "fga" => Ok(Scheme::Fga),
        "halfdram" | "half" => Ok(Scheme::HalfDram),
        "pra" => Ok(Scheme::Pra),
        "halfdrampra" | "combined" => Ok(Scheme::HalfDramPra),
        "dbi" => Ok(Scheme::Dbi),
        "dbipra" => Ok(Scheme::DbiPra),
        _ => Err(err(format!(
            "unknown scheme {name:?}; valid: baseline, fga, half-dram, pra, half-dram-pra, dbi, dbi-pra"
        ))),
    }
}

/// Resolves a page-policy name.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn parse_policy(name: &str) -> Result<PagePolicy, CliError> {
    match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "relaxed" | "relaxedclosepage" => Ok(PagePolicy::RelaxedClosePage),
        "restricted" | "restrictedclosepage" => Ok(PagePolicy::RestrictedClosePage),
        "open" | "openpage" => Ok(PagePolicy::OpenPage),
        _ => Err(err(format!(
            "unknown policy {name:?}; valid: relaxed, restricted, open"
        ))),
    }
}

/// Resolves a workload name to up to four application profiles: a benchmark
/// name gives `cores` identical instances; `MIX1`..`MIX6` give the paper's
/// Table 4 mixes (always 4 cores).
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn parse_workload(name: &str, cores: usize) -> Result<(String, Vec<BenchProfile>), CliError> {
    if let Some(mix) = workloads::all_mixes()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
    {
        return Ok((mix.name.to_string(), mix.apps.to_vec()));
    }
    if let Some(profile) = workloads::by_name(name) {
        return Ok((profile.name.to_string(), vec![profile; cores]));
    }
    let names: Vec<&str> = workloads::all_benchmarks().iter().map(|b| b.name).collect();
    Err(err(format!(
        "unknown workload {name:?}; valid: {} or MIX1..MIX6",
        names.join(", ")
    )))
}

fn build(opts: &Options, scheme: Scheme) -> Result<(String, SimBuilder), CliError> {
    let cores = opts.get_u64("cores", 4)? as usize;
    if cores == 0 || cores > 4 {
        return Err(err(
            "--cores must be 1..=4 (the 8 GB space is split per core)",
        ));
    }
    let workload = opts.get("workload").unwrap_or("GUPS");
    let (name, apps) = parse_workload(workload, cores)?;
    let policy = parse_policy(opts.get("policy").unwrap_or("relaxed"))?;
    let mut builder = SimBuilder::new()
        .name(name.clone())
        .scheme(scheme)
        .policy(policy)
        .instructions(opts.get_u64("instructions", 100_000)?)
        .seed(opts.get_u64("seed", 1)?);
    for app in apps {
        builder = builder.app(app);
    }
    if let Some(w) = opts.get("warmup") {
        let w = w
            .parse()
            .map_err(|_| err(format!("--warmup: invalid number {w:?}")))?;
        builder = builder.warmup_mem_ops(w);
    }
    match opts.get("prefetch") {
        None | Some("off") => {}
        Some("on") => builder = builder.prefetch_next_line(true),
        Some(other) => return Err(err(format!("--prefetch must be on|off, got {other:?}"))),
    }
    if let Some(path) = opts.get("faults") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read fault plan {path}: {e}")))?;
        let plan = FaultPlan::from_toml_str(&text).map_err(|e| err(format!("{path}: {e}")))?;
        builder = builder.faults(plan);
    }
    if opts.get_bool("recovery") {
        builder = builder.recovery(pra_core::RecoveryConfig::default());
    }
    let no_retire = opts.get_u64("watchdog-no-retire", 0)?;
    let queue_age = opts.get_u64("watchdog-queue-age", 0)?;
    if no_retire > 0 || queue_age > 0 {
        builder = builder.liveness_watchdog(no_retire, queue_age);
    }
    let every = opts.get_u64("checkpoint-every", 0)?;
    if every > 0 {
        builder = builder.checkpoint_every(every);
    }
    if let Some(dir) = opts.get("checkpoint-dir") {
        builder = builder.checkpoint_dir(dir);
    }
    if let Some(snap) = opts.get("restore") {
        builder = builder.restore(snap);
    }
    Ok((name, builder))
}

fn render_report(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload {}  scheme {}",
        report.workload, report.scheme
    );
    let _ = writeln!(
        out,
        "IPC {:.3} (per core: {})",
        report.ipc_sum(),
        report
            .ipc
            .iter()
            .map(|i| format!("{i:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "runtime {:.1} us   energy {:.3} mJ   EDP {:.3e}",
        report.runtime_ns / 1000.0,
        report.energy_mj(),
        report.edp()
    );
    let _ = writeln!(out, "\n{}", report.power);
    let d = &report.dram;
    let _ = writeln!(
        out,
        "\nrow buffer: rd {:.1}% wr {:.1}% hit | false hits rd {} wr {}",
        d.read.hit_rate() * 100.0,
        d.write.hit_rate() * 100.0,
        d.read.false_hits,
        d.write.false_hits
    );
    let p = d.granularity_proportions();
    let _ = writeln!(
        out,
        "activation granularity (1/8..full): {}",
        p.iter()
            .map(|v| format!("{:.1}%", v * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let f = &report.faults;
    if f.injected > 0 {
        let _ = writeln!(
            out,
            "faults: {} injected ({} mask, {} dropped, {} stretched, {} dirty flips), {} detected, {} degraded to full row",
            f.injected,
            f.masks_corrupted,
            f.commands_dropped,
            f.commands_stretched,
            f.dirty_bits_flipped,
            f.detected,
            f.degraded
        );
    }
    if f.escaped > 0 {
        let _ = writeln!(
            out,
            "parity escapes: {} corrupted masks activated undetected",
            f.escaped
        );
    }
    let r = &report.recovery;
    if r.engaged() {
        let _ = writeln!(
            out,
            "recovery: {} alerts, {} replays, {} recovered, {} exhausted (degraded), {} rows demoted, {} re-promoted",
            r.alerts, r.retries, r.recovered, r.exhausted, r.demotions, r.promotions
        );
    }
    let _ = writeln!(out, "state digest {:016x}", report.state_digest());
    out
}

/// `pra run`: one simulation, full report.
///
/// # Errors
///
/// Propagates option and name resolution errors.
pub fn cmd_run(opts: &Options) -> Result<String, CliError> {
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("pra"))?;
    let (_, builder) = build(opts, scheme)?;
    if opts.get_bool("verify-determinism") {
        let report = builder.try_run_verified()?;
        let mut out = render_report(&report);
        let _ = writeln!(out, "determinism verified: two runs, identical digests");
        Ok(out)
    } else {
        let (report, snap) = builder.try_run_snap()?;
        let mut out = render_report(&report);
        if let Some(cycle) = snap.restored_from_cycle {
            let _ = writeln!(out, "restored from checkpoint at cycle {cycle}");
        }
        if snap.checkpoints_written > 0 {
            let _ = writeln!(
                out,
                "{} checkpoint(s) written, last at cycle {}",
                snap.checkpoints_written,
                snap.last_checkpoint_cycle.unwrap_or(0)
            );
        }
        if snap.write_errors > 0 {
            let _ = writeln!(
                out,
                "warning: {} checkpoint write failure(s); the run continued uncheckpointed",
                snap.write_errors
            );
        }
        Ok(out)
    }
}

/// `pra compare`: every scheme on one workload, normalised table.
///
/// # Errors
///
/// Propagates option and name resolution errors.
pub fn cmd_compare(opts: &Options) -> Result<String, CliError> {
    let schemes = [
        Scheme::Baseline,
        Scheme::Fga,
        Scheme::HalfDram,
        Scheme::Pra,
        Scheme::HalfDramPra,
        Scheme::Dbi,
        Scheme::DbiPra,
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "scheme", "power mW", "norm", "IPC sum", "energy", "EDP"
    );
    let mut base: Option<Report> = None;
    for scheme in schemes {
        let (_, builder) = build(opts, scheme)?;
        let report = builder.try_run()?;
        let (norm_p, norm_e, norm_edp) = match &base {
            Some(b) => (
                report.power.total() / b.power.total(),
                report.energy.total() / b.energy.total(),
                report.edp() / b.edp(),
            ),
            None => (1.0, 1.0, 1.0),
        };
        let _ = writeln!(
            out,
            "{:<15} {:>10.1} {:>9.3} {:>9.2} {:>9.3} {:>9.3}",
            report.scheme,
            report.power.total(),
            norm_p,
            report.ipc_sum(),
            norm_e,
            norm_edp
        );
        if base.is_none() {
            base = Some(report);
        }
    }
    let _ = writeln!(
        out,
        "\n(norm/energy/EDP columns are relative to the baseline row)"
    );
    Ok(out)
}

/// `pra list`: available workloads, schemes and policies.
pub fn cmd_list() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "benchmarks:");
    for b in workloads::all_benchmarks() {
        let _ = writeln!(
            out,
            "  {:<12} {:>3} compute/mem, {:>4.0}% stores, {:>5.2} dirty words/store",
            b.name,
            b.compute_per_mem,
            b.store_fraction * 100.0,
            b.expected_dirty_words()
        );
    }
    let _ = writeln!(out, "mixes:");
    for m in workloads::all_mixes() {
        let names: Vec<&str> = m.apps.iter().map(|a| a.name).collect();
        let _ = writeln!(out, "  {:<6} {}", m.name, names.join(" + "));
    }
    let _ = writeln!(
        out,
        "schemes: baseline, fga, half-dram, pra, half-dram-pra, dbi, dbi-pra"
    );
    let _ = writeln!(out, "policies: relaxed (default), restricted, open");
    out
}

/// `pra trace <run|record|info>`: event tracing and workload trace tooling.
///
/// # Errors
///
/// Propagates option errors and I/O failures (as messages).
pub fn cmd_trace(opts: &Options) -> Result<String, CliError> {
    match opts.positional.first().map(String::as_str) {
        Some("run") => {
            let scheme = parse_scheme(opts.get("scheme").unwrap_or("pra"))?;
            let (_, mut builder) = build(opts, scheme)?;
            let trace_path = opts
                .get("trace-out")
                .ok_or_else(|| err("trace run needs --trace-out <file>"))?;
            // Validate output paths up front so a bad path is a clean CLI
            // error instead of a panic mid-run.
            std::fs::File::create(trace_path)
                .map_err(|e| err(format!("cannot create {trace_path}: {e}")))?;
            let ring_cap = opts.get_u64("ring", 0)? as usize;
            let ring = if ring_cap > 0 {
                let ring =
                    std::rc::Rc::new(std::cell::RefCell::new(sim_obs::RingSink::new(ring_cap)));
                builder = builder.trace_ring(std::rc::Rc::clone(&ring));
                Some(ring)
            } else {
                builder = builder.trace_out(trace_path);
                None
            };
            let epoch = opts.get_u64("metrics-epoch", 0)?;
            if epoch > 0 {
                builder = builder.metrics_epoch(epoch);
            }
            if let Some(metrics_path) = opts.get("metrics-out") {
                std::fs::File::create(metrics_path)
                    .map_err(|e| err(format!("cannot create {metrics_path}: {e}")))?;
                builder = builder.metrics_out(metrics_path);
            }
            let report = builder.try_run()?;
            let mut out = render_report(&report);
            if let Some(ring) = &ring {
                let ring = ring.borrow();
                let mut text = String::new();
                for ev in ring.events() {
                    ev.write_json(&mut text);
                    text.push('\n');
                }
                std::fs::write(trace_path, &text)
                    .map_err(|e| err(format!("cannot write {trace_path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "\n{} trace events written to {trace_path} (flight recorder, last {} of {} emitted)",
                    ring.events().count(),
                    ring.events().count(),
                    ring.total_emitted()
                );
                if ring.dropped() > 0 {
                    let _ = writeln!(
                        out,
                        "warning: trace ring dropped {} events (trace.dropped_events={}); \
                         raise --ring or drop it to stream the full trace",
                        ring.dropped(),
                        ring.dropped()
                    );
                }
            } else {
                let events = std::fs::read_to_string(trace_path)
                    .map(|t| t.lines().count())
                    .unwrap_or(0);
                let _ = writeln!(out, "\n{events} trace events written to {trace_path}");
            }
            if !report.metrics.is_empty() {
                let effective_epoch = if epoch > 0 { epoch } else { 100_000 };
                let _ = writeln!(
                    out,
                    "{} epoch snapshots (epoch {effective_epoch} memory cycles){}",
                    report.metrics.len(),
                    opts.get("metrics-out")
                        .map(|p| format!(", streamed to {p}"))
                        .unwrap_or_default()
                );
            }
            Ok(out)
        }
        Some("record") => {
            let (name, apps) = parse_workload(opts.get("workload").unwrap_or("GUPS"), 1)?;
            let ops = opts.get_u64("ops", 100_000)? as usize;
            let path = opts
                .get("out")
                .ok_or_else(|| err("trace record needs --out <file>"))?;
            let mut generator = workloads::WorkloadGen::new(apps[0], opts.get_u64("seed", 1)?, 0);
            let trace = workloads::Trace::record(&mut generator, ops);
            let file = std::fs::File::create(path)
                .map_err(|e| err(format!("cannot create {path}: {e}")))?;
            trace
                .save(std::io::BufWriter::new(file))
                .map_err(|e| err(format!("write failed: {e}")))?;
            Ok(format!(
                "recorded {} ops ({} memory ops) of {name} to {path}\n",
                trace.len(),
                trace.memory_ops()
            ))
        }
        Some("info") => {
            let path = opts
                .positional
                .get(1)
                .ok_or_else(|| err("trace info needs a file argument"))?;
            let file =
                std::fs::File::open(path).map_err(|e| err(format!("cannot open {path}: {e}")))?;
            let trace = workloads::Trace::load(std::io::BufReader::new(file))
                .map_err(|e| err(format!("parse failed: {e}")))?;
            let mut replay = trace.replay();
            let summary = workloads::analysis::analyze(&mut replay, trace.len() as u64);
            Ok(render_summary(path, &summary))
        }
        Some("export-perfetto") => {
            let out_path = opts
                .get("out")
                .ok_or_else(|| err("trace export-perfetto needs --out <file>"))?;
            let mut trace = sim_prof::PerfettoTrace::new();
            let mut out = String::new();
            if let Some(input) = opts.get("in") {
                // Convert mode: an existing JSONL trace becomes per-bank
                // simulated command tracks (no host spans — the run that
                // produced the file is long gone).
                let text = std::fs::read_to_string(input)
                    .map_err(|e| err(format!("cannot read {input}: {e}")))?;
                let (mut parsed, mut skipped) = (0u64, 0u64);
                for line in text.lines() {
                    match sim_obs::TraceEvent::parse_json(line) {
                        Some(ev) => {
                            trace.add_sim_event(&ev);
                            parsed += 1;
                        }
                        None => skipped += 1,
                    }
                }
                let _ = writeln!(out, "converted {parsed} events from {input}");
                if skipped > 0 {
                    let _ = writeln!(out, "{skipped} malformed line(s) skipped");
                }
            } else {
                // Run mode: simulate with a flight-recorder ring and the
                // host-time profiler, then export both clock domains.
                let scheme = parse_scheme(opts.get("scheme").unwrap_or("pra"))?;
                let (_, mut builder) = build(opts, scheme)?;
                let capacity = opts.get_u64("ring", 65_536)? as usize;
                if capacity == 0 {
                    return Err(err("--ring must be positive"));
                }
                let ring =
                    std::rc::Rc::new(std::cell::RefCell::new(sim_obs::RingSink::new(capacity)));
                builder = builder.trace_ring(std::rc::Rc::clone(&ring));
                sim_prof::reset();
                sim_prof::set_timeline_capacity(capacity);
                sim_prof::enable();
                let result = builder.try_run();
                sim_prof::disable();
                let timeline = sim_prof::take_timeline();
                sim_prof::reset();
                sim_prof::set_timeline_capacity(0);
                let report = result?;
                trace.add_host_spans(&timeline.spans);
                let ring = ring.borrow();
                trace.add_sim_events(ring.events());
                let _ = writeln!(
                    out,
                    "workload {} scheme {}: {} retained sim events, {} host spans",
                    report.workload,
                    report.scheme,
                    ring.events().count(),
                    timeline.spans.len()
                );
                if ring.dropped() > 0 {
                    let _ = writeln!(
                        out,
                        "warning: trace ring dropped {} events (trace.dropped_events={}); \
                         the timeline shows only the tail of the run — raise --ring to keep more",
                        ring.dropped(),
                        ring.dropped()
                    );
                }
                if timeline.dropped > 0 {
                    let _ = writeln!(
                        out,
                        "note: {} host spans beyond the timeline capacity were not recorded",
                        timeline.dropped
                    );
                }
            }
            std::fs::write(out_path, trace.to_json())
                .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
            let _ = writeln!(
                out,
                "{} Perfetto events written to {out_path} (open in https://ui.perfetto.dev \
                 or chrome://tracing)",
                trace.event_count()
            );
            Ok(out)
        }
        other => Err(err(format!(
            "trace needs a subcommand (run | record | info | export-perfetto), got {other:?}"
        ))),
    }
}

/// `pra prof run`: one simulation with the host-time profiler enabled,
/// reporting where host time went (`domain.name` spans ranked by self
/// time) alongside the usual report.
///
/// # Errors
///
/// Propagates option and name resolution errors.
pub fn cmd_prof(opts: &Options) -> Result<String, CliError> {
    match opts.positional.first().map(String::as_str) {
        Some("run") => {
            let scheme = parse_scheme(opts.get("scheme").unwrap_or("pra"))?;
            let (_, builder) = build(opts, scheme)?;
            let top = opts.get_u64("top", 10)? as usize;
            sim_prof::reset();
            sim_prof::enable();
            let result = builder.try_run();
            sim_prof::disable();
            let profile = sim_prof::take_report();
            let report = result?;
            let mut out = render_report(&report);
            let mut reg = sim_obs::MetricsRegistry::new();
            profile.publish_to(&mut reg);
            let _ = writeln!(
                out,
                "\nhost-time profile: {} spans, {} calls (top {} by self time)",
                reg.counter_value("prof.spans").unwrap_or(0),
                reg.counter_value("prof.span_calls").unwrap_or(0),
                top.min(profile.spans.len())
            );
            let trimmed = sim_prof::ProfileReport {
                spans: profile.top(top).into_iter().cloned().collect(),
            };
            out.push_str(&trimmed.render());
            Ok(out)
        }
        other => Err(err(format!("prof needs a subcommand (run), got {other:?}"))),
    }
}

fn render_summary(label: &str, s: &workloads::analysis::StreamSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label}: {} ops = {} compute instructions + {} loads + {} stores",
        s.ops, s.compute_instructions, s.loads, s.stores
    );
    let _ = writeln!(
        out,
        "store fraction {:.1}%   compute/mem {:.1}   dirty words/store {:.2}",
        s.store_fraction() * 100.0,
        s.compute_per_mem(),
        s.avg_dirty_words()
    );
    let _ = writeln!(
        out,
        "footprint {} lines ({:.1} MB)   sequential {:.1}%   reuse {:.1}%",
        s.footprint_lines,
        s.footprint_lines as f64 * 64.0 / 1e6,
        s.sequential_fraction * 100.0,
        s.reuse_fraction * 100.0
    );
    out
}

fn render_journal_report(journal: &str, loaded: &sim_harness::LoadedJournal) -> String {
    let mut out = String::new();
    let count = |status: RunStatus| loaded.records.iter().filter(|r| r.status == status).count();
    let host_nanos: u64 = loaded.records.iter().map(|r| r.host_nanos).sum();
    let _ = writeln!(
        out,
        "{journal}: {} journaled runs ({} ok, {} recovered, {} failed, {} hung), {:.2} s host time",
        loaded.records.len(),
        count(RunStatus::Ok),
        count(RunStatus::Recovered),
        count(RunStatus::Failed),
        count(RunStatus::Hung),
        host_nanos as f64 / 1e9,
    );
    if loaded.dropped_lines > 0 {
        let _ = writeln!(
            out,
            "{} malformed line(s) dropped (their runs will re-execute on resume)",
            loaded.dropped_lines
        );
    }
    // Aggregate DRAM energy across completed runs; journals written before
    // power telemetry existed parse with energy_pj 0 and are skipped.
    let energy_pj: u64 = loaded.records.iter().map(|r| r.energy_pj).sum();
    let completed = count(RunStatus::Ok) + count(RunStatus::Recovered);
    if energy_pj > 0 && completed > 0 {
        let peak_mw = loaded.records.iter().map(|r| r.avg_power_mw).max();
        let _ = writeln!(
            out,
            "dram energy: {:.3} mJ across {} completed run(s), peak per-run average power {} mW",
            energy_pj as f64 / 1e9,
            completed,
            peak_mw.unwrap_or(0),
        );
    }
    // The slowest-runs table; journals written before host timing existed
    // parse with host_nanos 0 and simply rank last.
    let mut by_time: Vec<&sim_harness::JournalRecord> = loaded.records.iter().collect();
    by_time.sort_by_key(|r| std::cmp::Reverse(r.host_nanos));
    by_time.truncate(sim_harness::SLOWEST_KEPT);
    if by_time.first().is_some_and(|r| r.host_nanos > 0) {
        let _ = writeln!(out, "slowest {} runs:", by_time.len());
        for r in by_time {
            let cycles_per_sec = if r.host_nanos == 0 {
                0.0
            } else {
                r.cycles as f64 * 1e9 / r.host_nanos as f64
            };
            let _ = writeln!(
                out,
                "  {:>9.3} s  [{}] {}/{} seed {} ({:.0} cycles/s)",
                r.host_nanos as f64 / 1e9,
                r.status,
                r.scheme,
                r.workload,
                r.seed,
                cycles_per_sec,
            );
        }
    }
    for r in &loaded.records {
        if !matches!(r.status, RunStatus::Ok | RunStatus::Recovered) {
            let _ = writeln!(
                out,
                "[{}] {}/{} seed {} (config {:016x}): {}\n  repro: {}",
                r.status, r.scheme, r.workload, r.seed, r.config_digest, r.detail, r.repro
            );
        }
    }
    out
}

/// `pra campaign <run|resume|report>`: batch experiment campaigns over a
/// scheme × workload × seed matrix, with a JSONL journal for resumability.
///
/// `run` executes a matrix file, `resume` continues an interrupted journal
/// (skipping completed runs), `report` summarises a journal without
/// running anything. A campaign that completes but journaled failures
/// returns its summary as a [`ErrorKind::CampaignFailures`] error (exit 4).
///
/// # Errors
///
/// Option/matrix/journal problems as [`ErrorKind::Config`]; journaled run
/// failures as [`ErrorKind::CampaignFailures`].
pub fn cmd_campaign(opts: &Options) -> Result<String, CliError> {
    match opts.positional.first().map(String::as_str) {
        Some(verb @ ("run" | "resume")) => {
            let matrix = opts
                .get("matrix")
                .ok_or_else(|| err(format!("campaign {verb} needs --matrix <file>")))?;
            let text = std::fs::read_to_string(matrix)
                .map_err(|e| err(format!("cannot read campaign matrix {matrix}: {e}")))?;
            let campaign =
                Campaign::from_toml_str(&text).map_err(|e| err(format!("{matrix}: {e}")))?;
            let journal = opts
                .get("journal")
                .ok_or_else(|| err(format!("campaign {verb} needs --journal <file>")))?;
            let options = CampaignOptions {
                jobs: opts.get_u64("jobs", 0)? as usize,
                journal: PathBuf::from(journal),
                resume: verb == "resume",
            };
            let summary = run_campaign(&campaign, &options).map_err(|e| err(e.to_string()))?;
            let rendered = format!("{}\n", summary.render());
            if summary.has_failures() {
                // The campaign itself completed: the summary goes to
                // stdout, the exit code says "with failures".
                Err(CliError {
                    message: rendered,
                    kind: ErrorKind::CampaignFailures,
                })
            } else {
                Ok(rendered)
            }
        }
        Some("report") => {
            let journal = opts
                .get("journal")
                .ok_or_else(|| err("campaign report needs --journal <file>"))?;
            let loaded = load_journal(Path::new(journal))
                .map_err(|e| err(format!("cannot read journal {journal}: {e}")))?;
            Ok(render_journal_report(journal, &loaded))
        }
        other => Err(err(format!(
            "campaign needs a subcommand (run | resume | report), got {other:?}"
        ))),
    }
}

/// `pra analyze`: emergent characteristics of a workload's stream.
///
/// # Errors
///
/// Propagates option and name resolution errors.
pub fn cmd_analyze(opts: &Options) -> Result<String, CliError> {
    let (name, apps) = parse_workload(opts.get("workload").unwrap_or("GUPS"), 1)?;
    let ops = opts.get_u64("ops", 200_000)?;
    let mut generator = workloads::WorkloadGen::new(apps[0], opts.get_u64("seed", 1)?, 0);
    let summary = workloads::analysis::analyze(&mut generator, ops);
    Ok(render_summary(&name, &summary))
}

/// `pra power run`: one simulation with live power telemetry — an
/// epoch-resolved power-rail table, a streaming-vs-post-hoc energy
/// reconciliation line and a savings line against the baseline scheme.
///
/// # Errors
///
/// Propagates option and name resolution errors.
pub fn cmd_power(opts: &Options) -> Result<String, CliError> {
    match opts.positional.first().map(String::as_str) {
        Some("run") => {}
        other => {
            return Err(err(format!(
                "power needs a subcommand (run), got {other:?}"
            )))
        }
    }
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("pra"))?;
    let epoch = opts.get_u64("epoch", 20_000)?;
    if epoch == 0 {
        return Err(err("--epoch must be a positive cycle count"));
    }
    let (_, builder) = build(opts, scheme)?;
    let report = builder.metrics_epoch(epoch).try_run()?;

    let gauge = |s: &sim_obs::EpochSnapshot, name: &str| -> f64 {
        s.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |&(_, v)| v)
    };
    let counter = |s: &sim_obs::EpochSnapshot, name: &str| -> u64 {
        s.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload {}  scheme {}  epoch {} mem cycles",
        report.workload, report.scheme, epoch
    );
    let _ = writeln!(
        out,
        "\n{:>5} {:>10} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>12}",
        "epoch", "cycles", "act-pre", "rd", "wr", "io", "bg", "ref", "total mW", "energy pJ"
    );
    let mut streamed_pj = 0u64;
    for s in &report.metrics {
        let epoch_pj = counter(s, "energy.total_pj");
        streamed_pj += epoch_pj;
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>12}",
            s.index,
            s.end_cycle - s.start_cycle,
            gauge(s, "power.act_pre_mw"),
            gauge(s, "power.rd_mw"),
            gauge(s, "power.wr_mw"),
            gauge(s, "power.rd_io_mw") + gauge(s, "power.wr_io_mw"),
            gauge(s, "power.bg_mw"),
            gauge(s, "power.refresh_mw"),
            gauge(s, "power.total_mw"),
            epoch_pj
        );
    }
    let posthoc_pj = report.energy.total().round() as u64;
    let _ = writeln!(
        out,
        "\nstreaming energy {streamed_pj} pJ over {} epochs; post-hoc accounting {posthoc_pj} pJ ({})",
        report.metrics.len(),
        if streamed_pj == posthoc_pj {
            "reconciled"
        } else {
            "MISMATCH"
        }
    );
    let _ = writeln!(
        out,
        "average power {:.1} mW over {:.1} us",
        report.power.total(),
        report.runtime_ns / 1000.0
    );
    if scheme != Scheme::Baseline {
        let (_, base_builder) = build(opts, Scheme::Baseline)?;
        let base = base_builder.try_run()?;
        let _ = writeln!(
            out,
            "vs baseline: power {:.1} mW -> {:.1} mW ({:+.1}%), energy {:+.1}%",
            base.power.total(),
            report.power.total(),
            (report.power.total() / base.power.total() - 1.0) * 100.0,
            (report.energy.total() / base.energy.total() - 1.0) * 100.0
        );
    }
    if streamed_pj != posthoc_pj {
        return Err(err(format!(
            "power telemetry reconciliation failed: streamed {streamed_pj} pJ != post-hoc {posthoc_pj} pJ"
        )));
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> String {
    "pra — Partial Row Activation DRAM simulator\n\
     \n\
     usage:\n\
     \x20 pra run     [--workload NAME] [--scheme S] [--policy P] [--cores N]\n\
     \x20             [--instructions N] [--seed N] [--warmup N]\n\
     \x20             [--faults PLAN.toml] [--recovery] [--verify-determinism]\n\
     \x20             [--watchdog-no-retire N] [--watchdog-queue-age N]\n\
     \x20             [--checkpoint-every N --checkpoint-dir D] [--restore SNAP]\n\
     \x20             inject deterministic faults / run twice and compare digests\n\
     \x20             --recovery arms parity-alert replay with full-row fallback\n\
     \x20             / stop livelocked runs after N quiet memory cycles\n\
     \x20             checkpoint the full simulator state every N memory cycles\n\
     \x20             into D (snap-*.snap), or resume a run from one snapshot;\n\
     \x20             a restored run finishes with the same state digest as an\n\
     \x20             uninterrupted one\n\
     \x20 pra compare [same options]         compare all schemes on one workload\n\
     \x20 pra list                           available workloads/schemes/policies\n\
     \x20 pra campaign run    --matrix M.toml --journal J.jsonl [--jobs N]\n\
     \x20 pra campaign resume --matrix M.toml --journal J.jsonl [--jobs N]\n\
     \x20 pra campaign report --journal J.jsonl\n\
     \x20                run a batch campaign on a worker pool; every run is\n\
     \x20                journaled, panics are isolated, resume skips done runs\n\
     \x20                exit codes: 0 ok, 2 config, 3 protocol/liveness,\n\
     \x20                4 campaign finished with failures\n\
     \x20 pra trace run  [run options] --trace-out FILE [--ring N]\n\
     \x20                [--metrics-epoch N] [--metrics-out FILE]\n\
     \x20                run with JSONL event tracing / epoch metric snapshots;\n\
     \x20                --ring keeps only the last N events (flight recorder)\n\
     \x20                and warns when the ring overflowed\n\
     \x20 pra trace record --workload NAME --ops N --out FILE [--seed N]\n\
     \x20 pra trace info FILE\n\
     \x20 pra trace export-perfetto [run options] --out FILE [--ring N]\n\
     \x20 pra trace export-perfetto --in TRACE.jsonl --out FILE\n\
     \x20                export a Perfetto/chrome://tracing timeline: per-bank\n\
     \x20                DRAM command tracks (row + PRA mats/mask args) plus\n\
     \x20                host-time profiler spans (run mode only)\n\
     \x20 pra power run [run options] [--epoch N]\n\
     \x20                epoch-resolved power rails (mW per component) and\n\
     \x20                energy counters (pJ), a streaming-vs-post-hoc\n\
     \x20                reconciliation check, and savings vs the baseline\n\
     \x20 pra prof run [run options] [--top N]\n\
     \x20                profile where host time goes (span self/total time,\n\
     \x20                call counts) while running one simulation\n"
        .to_string()
}

/// Dispatches a full argument list (without argv[0]).
///
/// # Errors
///
/// Returns a user-facing message for unknown commands or bad options.
pub fn dispatch(args: Vec<String>) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(usage());
    };
    let opts = Options::parse(rest.to_vec())?;
    match command.as_str() {
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "list" => Ok(cmd_list()),
        "trace" => cmd_trace(&opts),
        "power" => cmd_power(&opts),
        "prof" => cmd_prof(&opts),
        "campaign" => cmd_campaign(&opts),
        "analyze" => cmd_analyze(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command {other:?}\n\n{}", usage()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn options_parse_flags_and_positionals() -> TestResult {
        let o = Options::parse(["record", "--ops", "5", "file.txt"].map(String::from))?;
        assert_eq!(o.positional, vec!["record", "file.txt"]);
        assert_eq!(o.get("ops"), Some("5"));
        assert_eq!(o.get_u64("ops", 0)?, 5);
        assert_eq!(o.get_u64("missing", 7)?, 7);
        Ok(())
    }

    #[test]
    fn options_reject_dangling_flag() {
        assert!(Options::parse(["--seed"].map(String::from)).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() -> TestResult {
        let o = Options::parse(["--verify-determinism", "--seed", "3"].map(String::from))?;
        assert!(o.get_bool("verify-determinism"));
        assert_eq!(o.get_u64("seed", 0)?, 3);
        assert!(!o.get_bool("seed"), "valued flags are not boolean");
        Ok(())
    }

    #[test]
    fn scheme_and_policy_names() -> TestResult {
        assert_eq!(parse_scheme("PRA")?, Scheme::Pra);
        assert_eq!(parse_scheme("half-dram")?, Scheme::HalfDram);
        assert_eq!(parse_scheme("Half_Dram_PRA")?, Scheme::HalfDramPra);
        assert!(parse_scheme("turbo").is_err());
        assert_eq!(parse_policy("open")?, PagePolicy::OpenPage);
        assert!(parse_policy("lazy").is_err());
        Ok(())
    }

    #[test]
    fn workload_resolution() -> TestResult {
        let (name, apps) = parse_workload("gups", 4)?;
        assert_eq!(name, "GUPS");
        assert_eq!(apps.len(), 4);
        let (name, apps) = parse_workload("mix3", 1)?;
        assert_eq!(name, "MIX3");
        assert_eq!(apps.len(), 4, "mixes are always four apps");
        assert!(parse_workload("dhrystone", 1).is_err());
        Ok(())
    }

    #[test]
    fn run_command_end_to_end() -> TestResult {
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--warmup",
                "20000",
            ]
            .map(String::from),
        )?;
        let out = cmd_run(&opts)?;
        assert!(out.contains("scheme PRA"), "{out}");
        assert!(out.contains("ACT-PRE"), "{out}");
        assert!(out.contains("state digest"), "{out}");
        Ok(())
    }

    #[test]
    fn power_run_renders_rails_and_reconciles() -> TestResult {
        let opts = Options::parse(
            [
                "run",
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--warmup",
                "20000",
                "--epoch",
                "10000",
            ]
            .map(String::from),
        )?;
        let out = cmd_power(&opts)?;
        assert!(out.contains("total mW"), "{out}");
        assert!(out.contains("energy pJ"), "{out}");
        assert!(out.contains("reconciled"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
        assert!(out.contains("vs baseline:"), "{out}");
        Ok(())
    }

    #[test]
    fn power_needs_a_subcommand() -> TestResult {
        let opts = Options::parse(Vec::<String>::new())?;
        let e = cmd_power(&opts).expect_err("bare power must be rejected");
        assert!(e.message.contains("power needs a subcommand"), "{e}");
        Ok(())
    }

    #[test]
    fn verify_determinism_runs_twice_and_passes() -> TestResult {
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--cores",
                "1",
                "--instructions",
                "2000",
                "--verify-determinism",
            ]
            .map(String::from),
        )?;
        let out = cmd_run(&opts)?;
        assert!(out.contains("determinism verified"), "{out}");
        Ok(())
    }

    #[test]
    fn fault_plan_file_drives_injection() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let plan = dir.join("plan.toml");
        std::fs::write(
            &plan,
            "[faults]\nseed = 7\nmask_corrupt_rate = 1.0\ncommand_drop_rate = 0.1\n",
        )?;
        let path = plan.to_str().ok_or("non-utf8 temp path")?;
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--faults",
                path,
                "--verify-determinism",
            ]
            .map(String::from),
        )?;
        let out = cmd_run(&opts)?;
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("determinism verified"), "{out}");
        std::fs::remove_file(plan).ok();
        Ok(())
    }

    #[test]
    fn recovery_flag_reports_replay_counters() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let plan = dir.join("recovery-plan.toml");
        std::fs::write(
            &plan,
            "[faults]\nseed = 9\nmask_corrupt_rate = 0.5\npersistent_rate = 0.1\n",
        )?;
        let path = plan.to_str().ok_or("non-utf8 temp path")?;
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--faults",
                path,
                "--recovery",
                "--verify-determinism",
            ]
            .map(String::from),
        )?;
        let out = cmd_run(&opts)?;
        assert!(out.contains("recovery:"), "{out}");
        assert!(out.contains("alerts"), "{out}");
        assert!(out.contains("determinism verified"), "{out}");
        std::fs::remove_file(plan).ok();
        Ok(())
    }

    #[test]
    fn bad_fault_plan_is_a_clean_error() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let plan = dir.join("bad-plan.toml");
        std::fs::write(&plan, "mask_corrupt_rate = 2.0\n")?;
        let path = plan.to_str().ok_or("non-utf8 temp path")?;
        let opts = Options::parse(["--faults", path].map(String::from))?;
        let e = cmd_run(&opts).expect_err("out-of-range rate must be rejected");
        assert!(e.message.contains("invalid fault plan"), "{e}");
        assert_eq!(e.kind.exit_code(), 2);
        let missing = Options::parse(["--faults", "/no/such/plan.toml"].map(String::from))?;
        let e = cmd_run(&missing).expect_err("missing plan file must be rejected");
        assert!(e.message.contains("cannot read fault plan"), "{e}");
        std::fs::remove_file(plan).ok();
        Ok(())
    }

    #[test]
    fn trace_record_and_info_roundtrip() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("t.trace");
        let path_str = path.to_str().ok_or("non-utf8 temp path")?;
        let record = Options::parse(
            [
                "record",
                "--workload",
                "gups",
                "--ops",
                "200",
                "--out",
                path_str,
            ]
            .map(String::from),
        )?;
        let out = cmd_trace(&record)?;
        assert!(out.contains("recorded 200 ops"), "{out}");
        let info = Options::parse(["info".to_string(), path_str.to_string()])?;
        let out = cmd_trace(&info)?;
        assert!(out.contains("200 ops"), "{out}");
        std::fs::remove_file(path).ok();
        Ok(())
    }

    #[test]
    fn trace_run_writes_event_log_and_snapshots() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let trace = dir.join("run.jsonl");
        let metrics = dir.join("metrics.jsonl");
        let opts = Options::parse(
            [
                "run",
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--warmup",
                "20000",
                "--trace-out",
                trace.to_str().ok_or("non-utf8 temp path")?,
                "--metrics-epoch",
                "500",
                "--metrics-out",
                metrics.to_str().ok_or("non-utf8 temp path")?,
            ]
            .map(String::from),
        )?;
        let out = cmd_trace(&opts)?;
        assert!(out.contains("trace events written"), "{out}");
        assert!(
            out.contains("epoch snapshots (epoch 500 memory cycles)"),
            "{out}"
        );
        let text = std::fs::read_to_string(&trace)?;
        assert!(text.lines().count() > 0);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(std::fs::read_to_string(&metrics)?.contains("dram.activations"));
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(metrics).ok();
        Ok(())
    }

    #[test]
    fn trace_run_ring_mode_warns_on_overflow() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let trace = dir.join("ring.jsonl");
        let opts = Options::parse(
            [
                "run",
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--warmup",
                "20000",
                "--ring",
                "16",
                "--trace-out",
                trace.to_str().ok_or("non-utf8 temp path")?,
            ]
            .map(String::from),
        )?;
        let out = cmd_trace(&opts)?;
        assert!(out.contains("flight recorder"), "{out}");
        assert!(
            out.contains("warning: trace ring dropped"),
            "a 16-event ring must overflow: {out}"
        );
        assert!(out.contains("trace.dropped_events="), "{out}");
        let text = std::fs::read_to_string(&trace)?;
        assert_eq!(text.lines().count(), 16, "the file holds the retained tail");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(trace).ok();
        Ok(())
    }

    #[test]
    fn trace_export_perfetto_run_mode_combines_clock_domains() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("timeline.json");
        let opts = Options::parse(
            [
                "export-perfetto",
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--warmup",
                "20000",
                "--out",
                path.to_str().ok_or("non-utf8 temp path")?,
            ]
            .map(String::from),
        )?;
        let out = cmd_trace(&opts)?;
        assert!(out.contains("Perfetto events written"), "{out}");
        let json = std::fs::read_to_string(&path)?;
        assert!(json.starts_with("{\"traceEvents\":["), "{}", &json[..60]);
        // Simulated per-bank command tracks with activation args. (Reads
        // activate full rows even under PRA — the partial-activation arg
        // rendering itself is covered by the convert-mode test below.)
        assert!(
            json.contains("\"name\":\"ACT\""),
            "activation events present"
        );
        assert!(
            json.contains("\"mats\":"),
            "activation args carry mat count"
        );
        assert!(
            json.contains("\"mask\":"),
            "activation args carry word mask"
        );
        assert!(json.contains("rank0/bank"), "per-bank track names");
        // ...alongside host-time profiler spans.
        assert!(
            json.contains("\"name\":\"dram.tick\""),
            "host spans present"
        );
        assert!(json.contains("host profiler"), "host process named");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON"
        );
        std::fs::remove_file(path).ok();
        Ok(())
    }

    #[test]
    fn trace_export_perfetto_converts_existing_jsonl() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let input = dir.join("convert-in.jsonl");
        let output = dir.join("convert-out.json");
        std::fs::write(
            &input,
            "{\"kind\":\"PARTIAL_ACT\",\"cycle\":42,\"ch\":0,\"rank\":0,\"bank\":3,\
             \"row\":77,\"mats\":4,\"mask\":15}\n\
             {\"kind\":\"RD\",\"cycle\":50,\"ch\":0,\"rank\":0,\"bank\":3,\"row\":77}\n\
             not json at all\n",
        )?;
        let opts = Options::parse(
            [
                "export-perfetto",
                "--in",
                input.to_str().ok_or("non-utf8 temp path")?,
                "--out",
                output.to_str().ok_or("non-utf8 temp path")?,
            ]
            .map(String::from),
        )?;
        let out = cmd_trace(&opts)?;
        assert!(out.contains("converted 2 events"), "{out}");
        assert!(out.contains("1 malformed line(s) skipped"), "{out}");
        let json = std::fs::read_to_string(&output)?;
        assert!(json.contains("\"row\":77,\"mats\":4,\"mask\":15"), "{json}");
        std::fs::remove_file(input).ok();
        std::fs::remove_file(output).ok();
        Ok(())
    }

    #[test]
    fn prof_run_reports_span_table() -> TestResult {
        let opts = Options::parse(
            [
                "run",
                "--workload",
                "gups",
                "--scheme",
                "pra",
                "--cores",
                "1",
                "--instructions",
                "5000",
                "--warmup",
                "20000",
                "--top",
                "3",
            ]
            .map(String::from),
        )?;
        let out = cmd_prof(&opts)?;
        assert!(out.contains("state digest"), "{out}");
        assert!(out.contains("host-time profile"), "{out}");
        // --top 3 trims the table to a header plus three data rows; which
        // spans rank highest varies by host, but the hot-loop spans dominate
        // so at least one tick-family span must appear.
        let rows: Vec<&str> = out
            .lines()
            .skip_while(|l| !l.starts_with("span"))
            .skip(1)
            .filter(|l| !l.trim().is_empty())
            .collect();
        assert_eq!(rows.len(), 3, "{out}");
        assert!(
            rows.iter()
                .any(|l| l.contains(".tick") || l.contains("cache.access")),
            "{out}"
        );
        Ok(())
    }

    #[test]
    fn dispatch_unknown_command_errors() -> TestResult {
        let e = dispatch(vec!["frobnicate".into()]).expect_err("unknown command must error");
        assert!(e.message.contains("unknown command"));
        assert_eq!(e.kind, ErrorKind::Config);
        assert!(dispatch(vec![])?.contains("usage"));
        Ok(())
    }

    #[test]
    fn tight_watchdog_maps_to_the_liveness_exit_code() -> TestResult {
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--cores",
                "1",
                "--instructions",
                "2000",
                "--watchdog-no-retire",
                "20",
            ]
            .map(String::from),
        )?;
        let e = cmd_run(&opts).expect_err("a 20-cycle bound must trip");
        assert_eq!(e.kind, ErrorKind::Liveness);
        assert_eq!(e.kind.exit_code(), 3);
        assert!(e.message.contains("liveness violation"), "{e}");
        Ok(())
    }

    #[test]
    fn campaign_run_report_and_failure_exit_code() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-test");
        std::fs::create_dir_all(&dir)?;
        let matrix = dir.join("campaign.toml");
        std::fs::write(
            &matrix,
            "[campaign]\nschemes = [\"baseline\"]\nworkloads = [\"GUPS\"]\nseeds = [1, 2]\n\
             instructions = 300\nwarmup = 1000\ninclude_hang_fixture = true\n",
        )?;
        let journal = dir.join("campaign.jsonl");
        let _ = std::fs::remove_file(&journal);
        let args = |verb: &str| {
            Options::parse(
                [
                    verb,
                    "--matrix",
                    matrix.to_str().unwrap(),
                    "--journal",
                    journal.to_str().unwrap(),
                    "--jobs",
                    "2",
                ]
                .map(String::from),
            )
        };
        // The hang fixture makes the campaign "complete with failures".
        let e = cmd_campaign(&args("run")?).expect_err("hang fixture must surface as exit 4");
        assert_eq!(e.kind, ErrorKind::CampaignFailures);
        assert_eq!(e.kind.exit_code(), 4);
        assert!(e.message.contains("3 runs"), "{e}");
        assert!(e.message.contains("1 hung"), "{e}");
        assert!(e.message.contains("repro:"), "{e}");
        assert!(e.message.contains("host time:"), "{e}");
        assert!(e.message.contains("slowest 3 runs:"), "{e}");
        assert!(e.message.contains("cycles/s"), "{e}");
        // Resume skips everything journaled — including the hung run — so
        // it exits clean.
        let out = cmd_campaign(&args("resume")?)?;
        assert!(out.contains("3 skipped"), "{out}");
        // Report reads the journal without running anything.
        let report = cmd_campaign(&Options::parse(
            ["report", "--journal", journal.to_str().unwrap()].map(String::from),
        )?)?;
        assert!(report.contains("3 journaled runs"), "{report}");
        assert!(report.contains("1 hung"), "{report}");
        assert!(report.contains("repro:"), "{report}");
        assert!(report.contains("s host time"), "{report}");
        assert!(report.contains("slowest 3 runs:"), "{report}");
        // Resume without a journal is a plain config error.
        let _ = std::fs::remove_file(&journal);
        let e = cmd_campaign(&args("resume")?).expect_err("resume needs a journal");
        assert_eq!(e.kind, ErrorKind::Config);
        assert!(e.message.contains("cannot resume"), "{e}");
        std::fs::remove_file(matrix).ok();
        Ok(())
    }

    #[test]
    fn run_checkpoint_restore_digest_identity() -> TestResult {
        let dir = std::env::temp_dir().join("pra-cli-snap-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)?;
        let snap_dir = dir.join("snaps");
        let base = [
            "--workload",
            "gups",
            "--scheme",
            "pra",
            "--cores",
            "1",
            "--instructions",
            "6000",
            "--warmup",
            "60000",
        ]
        .map(String::from);

        // Reference: uninterrupted run.
        let reference = cmd_run(&Options::parse(base.clone())?)?;
        let digest_line = |out: &str| -> String {
            out.lines()
                .find(|l| l.starts_with("state digest"))
                .unwrap_or_default()
                .to_string()
        };

        // Checkpointing run: same workload, must checkpoint and match.
        let mut with_ckpt = base.to_vec();
        with_ckpt.extend(
            [
                "--checkpoint-every",
                "1000",
                "--checkpoint-dir",
                snap_dir.to_str().ok_or("non-utf8 temp path")?,
            ]
            .map(String::from),
        );
        let out = cmd_run(&Options::parse(with_ckpt)?)?;
        assert!(out.contains("checkpoint(s) written"), "{out}");
        assert_eq!(digest_line(&out), digest_line(&reference), "{out}");

        // Restore from the newest snapshot and finish: digest identical.
        let mut snaps: Vec<PathBuf> = std::fs::read_dir(&snap_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        snaps.sort();
        let last = snaps.last().ok_or("no snapshots written")?;
        let mut with_restore = base.to_vec();
        with_restore.extend([
            "--restore".to_string(),
            last.to_str().ok_or("bad path")?.to_string(),
        ]);
        let out = cmd_run(&Options::parse(with_restore)?)?;
        assert!(out.contains("restored from checkpoint at cycle"), "{out}");
        assert_eq!(digest_line(&out), digest_line(&reference), "{out}");

        // Restoring under a different configuration is a config error.
        let mut wrong = base.to_vec();
        wrong[3] = "baseline".to_string();
        wrong.extend([
            "--restore".to_string(),
            last.to_str().ok_or("bad path")?.to_string(),
        ]);
        let e = cmd_run(&Options::parse(wrong)?).expect_err("config mismatch must be rejected");
        assert_eq!(e.kind.exit_code(), 2);
        assert!(e.message.contains("cannot restore"), "{e}");

        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn half_configured_checkpointing_is_exit_2() -> TestResult {
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--cores",
                "1",
                "--instructions",
                "1000",
                "--checkpoint-every",
                "5000",
            ]
            .map(String::from),
        )?;
        let e = cmd_run(&opts).expect_err("interval without directory must be rejected");
        assert_eq!(e.kind, ErrorKind::Config);
        assert_eq!(e.kind.exit_code(), 2);
        assert!(e.message.contains("checkpoint"), "{e}");
        Ok(())
    }

    #[test]
    fn restoring_a_missing_snapshot_is_exit_2() -> TestResult {
        let opts = Options::parse(
            [
                "--workload",
                "gups",
                "--cores",
                "1",
                "--instructions",
                "1000",
                "--restore",
                "/no/such/file.snap",
            ]
            .map(String::from),
        )?;
        let e = cmd_run(&opts).expect_err("missing snapshot must be rejected");
        assert_eq!(e.kind.exit_code(), 2);
        assert!(e.message.contains("cannot restore"), "{e}");
        Ok(())
    }

    #[test]
    fn list_names_everything() {
        let out = cmd_list();
        for name in ["bzip2", "GUPS", "MIX6", "half-dram-pra", "restricted"] {
            assert!(out.contains(name), "missing {name} in\n{out}");
        }
    }
}
