//! A small, dependency-free SVG renderer for the figures the harness
//! regenerates: grouped bar charts (Figures 2, 11, 12, 13) and simple line
//! series (Figure 9). Produces standalone `.svg` files a browser renders
//! directly — no plotting toolchain required.
//!
//! The observability layer's epoch snapshots plug straight in:
//! [`epoch_chart`] turns a run's `Report::metrics` time series into a
//! [`LineChart`].

use sim_obs::EpochSnapshot;

/// One group of bars (e.g. one workload) with one value per series.
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// Group label drawn under the x-axis.
    pub label: String,
    /// One value per series, in series order.
    pub values: Vec<f64>,
}

/// A grouped-bar chart description.
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Series names (legend), one per bar within each group.
    pub series: Vec<String>,
    /// The groups, drawn left to right.
    pub groups: Vec<BarGroup>,
    /// Optional horizontal reference line (e.g. 1.0 for normalised charts).
    pub reference: Option<f64>,
}

const PALETTE: [&str; 6] = [
    "#4878a8", "#e49444", "#85b6b2", "#d1605e", "#6a9f58", "#967662",
];
const WIDTH: f64 = 960.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 160.0;
const MARGIN_TOP: f64 = 50.0;
const MARGIN_BOTTOM: f64 = 80.0;

fn esc(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl BarChart {
    /// Renders the chart to an SVG document.
    ///
    /// # Panics
    ///
    /// Panics if the chart has no groups, no series, or a group whose value
    /// count disagrees with the series count — malformed charts are
    /// programming errors in the harness.
    pub fn to_svg(&self) -> String {
        assert!(!self.groups.is_empty(), "chart needs at least one group");
        assert!(!self.series.is_empty(), "chart needs at least one series");
        for g in &self.groups {
            assert_eq!(
                g.values.len(),
                self.series.len(),
                "group {:?} has {} values for {} series",
                g.label,
                g.values.len(),
                self.series.len()
            );
        }
        let max_value = self
            .groups
            .iter()
            .flat_map(|g| g.values.iter().copied())
            .chain(self.reference)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let group_w = plot_w / self.groups.len() as f64;
        let bar_w = (group_w * 0.8) / self.series.len() as f64;
        let y_of = |v: f64| MARGIN_TOP + plot_h * (1.0 - v / (max_value * 1.1));

        let mut svg = String::new();
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        ));
        svg.push_str(&format!(
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/><text x="{}" y="24" font-size="16" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            esc(&self.title)
        ));
        // Y axis with 5 ticks.
        for tick in 0..=5 {
            let v = max_value * 1.1 * f64::from(tick) / 5.0;
            let y = y_of(v);
            svg.push_str(&format!(
                r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{v:.2}</text>"##,
                WIDTH - MARGIN_RIGHT,
                MARGIN_LEFT - 6.0,
                y + 4.0
            ));
        }
        svg.push_str(&format!(
            r#"<text x="16" y="{:.1}" font-size="12" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.y_label)
        ));
        // Bars.
        for (gi, group) in self.groups.iter().enumerate() {
            let gx = MARGIN_LEFT + group_w * (gi as f64 + 0.1);
            for (si, &v) in group.values.iter().enumerate() {
                let x = gx + bar_w * si as f64;
                let y = y_of(v.max(0.0));
                let h = (MARGIN_TOP + plot_h - y).max(0.0);
                svg.push_str(&format!(
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{}"><title>{}: {v:.3}</title></rect>"#,
                    bar_w * 0.92,
                    PALETTE[si % PALETTE.len()],
                    esc(&group.label),
                ));
            }
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end" transform="rotate(-35 {:.1} {:.1})">{}</text>"#,
                gx + group_w * 0.4,
                MARGIN_TOP + plot_h + 16.0,
                gx + group_w * 0.4,
                MARGIN_TOP + plot_h + 16.0,
                esc(&group.label)
            ));
        }
        // Reference line.
        if let Some(reference) = self.reference {
            let y = y_of(reference);
            svg.push_str(&format!(
                r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#555" stroke-dasharray="6 4"/>"##,
                WIDTH - MARGIN_RIGHT
            ));
        }
        // Legend.
        for (si, name) in self.series.iter().enumerate() {
            let y = MARGIN_TOP + 18.0 * si as f64;
            svg.push_str(&format!(
                r#"<rect x="{:.1}" y="{y:.1}" width="12" height="12" fill="{}"/><text x="{:.1}" y="{:.1}" font-size="12">{}</text>"#,
                WIDTH - MARGIN_RIGHT + 14.0,
                PALETTE[si % PALETTE.len()],
                WIDTH - MARGIN_RIGHT + 32.0,
                y + 10.0,
                esc(name)
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

/// A simple one-series line chart (used for Figure 9).
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// `(x, y)` points, drawn in order.
    pub points: Vec<(f64, f64)>,
}

impl LineChart {
    /// Renders the chart to an SVG document.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two points.
    pub fn to_svg(&self) -> String {
        assert!(
            self.points.len() >= 2,
            "line chart needs at least two points"
        );
        let (x_min, x_max) = self
            .points
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
                (lo.min(x), hi.max(x))
            });
        let y_max = self
            .points
            .iter()
            .fold(0.0f64, |m, &(_, y)| m.max(y))
            .max(1e-12);
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let px = |x: f64| MARGIN_LEFT + plot_w * (x - x_min) / (x_max - x_min).max(1e-12);
        let py = |y: f64| MARGIN_TOP + plot_h * (1.0 - y / (y_max * 1.1));
        let mut svg = String::new();
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        ));
        svg.push_str(&format!(
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/><text x="{}" y="24" font-size="16" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            esc(&self.title)
        ));
        for tick in 0..=5 {
            let v = y_max * 1.1 * f64::from(tick) / 5.0;
            let y = py(v);
            svg.push_str(&format!(
                r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{v:.0}</text>"##,
                WIDTH - MARGIN_RIGHT,
                MARGIN_LEFT - 6.0,
                y + 4.0
            ));
        }
        let path: Vec<String> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                format!(
                    "{}{:.1} {:.1}",
                    if i == 0 { "M" } else { "L" },
                    px(x),
                    py(y)
                )
            })
            .collect();
        svg.push_str(&format!(
            r#"<path d="{}" fill="none" stroke="{}" stroke-width="2.5"/>"#,
            path.join(" "),
            PALETTE[0]
        ));
        for &(x, y) in &self.points {
            svg.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}"><title>({x:.0}, {y:.2})</title></circle>"#,
                px(x),
                py(y),
                PALETTE[0]
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">{x:.0}</text>"#,
                px(x),
                MARGIN_TOP + plot_h + 16.0
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            HEIGHT - 24.0,
            esc(&self.x_label)
        ));
        svg.push_str(&format!(
            r#"<text x="16" y="{:.1}" font-size="12" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.y_label)
        ));
        svg.push_str("</svg>");
        svg
    }
}

/// Extracts one counter's `(epoch end cycle, delta)` time series from a
/// run's epoch snapshots (a `Report::metrics` value). Epochs without the
/// counter contribute a zero point, so the series always has one point per
/// snapshot.
pub fn epoch_counter_series(snapshots: &[EpochSnapshot], counter: &str) -> Vec<(f64, f64)> {
    snapshots
        .iter()
        .map(|s| {
            let delta = s
                .counters
                .iter()
                .find(|(name, _)| name == counter)
                .map_or(0, |(_, delta)| *delta);
            (s.end_cycle as f64, delta as f64)
        })
        .collect()
}

/// A ready-to-render line chart of one counter's per-epoch rate over a run
/// (e.g. `dram.activations` to watch activation pressure over time).
pub fn epoch_chart(snapshots: &[EpochSnapshot], counter: &str, title: &str) -> LineChart {
    LineChart {
        title: title.to_string(),
        x_label: "memory cycle (epoch end)".to_string(),
        y_label: format!("{counter} per epoch"),
        points: epoch_counter_series(snapshots, counter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(index: u64, start: u64, end: u64, acts: u64) -> EpochSnapshot {
        EpochSnapshot {
            index,
            start_cycle: start,
            end_cycle: end,
            counters: vec![("dram.activations".to_string(), acts)],
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn epoch_series_tracks_counter_deltas() {
        let snaps = vec![snapshot(0, 0, 100, 7), snapshot(1, 100, 200, 3)];
        let series = epoch_counter_series(&snaps, "dram.activations");
        assert_eq!(series, vec![(100.0, 7.0), (200.0, 3.0)]);
        // Missing counters become zero points, keeping the x axis intact.
        let absent = epoch_counter_series(&snaps, "dram.refreshes");
        assert_eq!(absent, vec![(100.0, 0.0), (200.0, 0.0)]);
        let svg = epoch_chart(&snaps, "dram.activations", "ACT rate").to_svg();
        assert!(svg.contains("ACT rate") && svg.contains("per epoch"));
    }

    fn chart() -> BarChart {
        BarChart {
            title: "t<est>".into(),
            y_label: "mW".into(),
            series: vec!["a".into(), "b".into()],
            groups: vec![
                BarGroup {
                    label: "g1".into(),
                    values: vec![1.0, 2.0],
                },
                BarGroup {
                    label: "g2".into(),
                    values: vec![0.5, 1.5],
                },
            ],
            reference: Some(1.0),
        }
    }

    #[test]
    fn bar_chart_svg_structure() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(
            svg.matches("<rect").count(),
            1 + 4 + 2,
            "bg + 4 bars + 2 legend swatches"
        );
        assert!(svg.contains("stroke-dasharray"), "reference line drawn");
        assert!(svg.contains("t&lt;est&gt;"), "title XML-escaped");
        assert!(svg.contains("g1") && svg.contains("g2"));
    }

    #[test]
    fn bar_chart_handles_zero_values() {
        let mut c = chart();
        c.groups[0].values = vec![0.0, 0.0];
        c.reference = None;
        let svg = c.to_svg();
        assert!(!svg.contains("NaN"), "no NaN coordinates");
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn ragged_groups_rejected() {
        let mut c = chart();
        c.groups[1].values.pop();
        let _ = c.to_svg();
    }

    #[test]
    fn line_chart_svg_structure() {
        let svg = LineChart {
            title: "fig9".into(),
            x_label: "MATs".into(),
            y_label: "pJ".into(),
            points: vec![(2.0, 51.9), (8.0, 153.4), (16.0, 288.8)],
        }
        .to_svg();
        assert!(svg.contains("<path"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn short_line_rejected() {
        let _ = LineChart {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            points: vec![(0.0, 0.0)],
        }
        .to_svg();
    }
}
