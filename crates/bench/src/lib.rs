//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index). All binaries accept the run
//! length as their first CLI argument (instructions per core) and a seed as
//! the second, defaulting to [`ExperimentConfig::figure`].
//!
//! ```bash
//! cargo run -p bench --release --bin table1            # default length
//! cargo run -p bench --release --bin fig12 -- 100000   # quicker
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod timing;

pub use pra_core::experiments::ExperimentConfig;

/// Parses `[instructions] [seed]` from the command line.
pub fn config_from_args() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::figure();
    let mut args = std::env::args().skip(1);
    if let Some(n) = args.next().and_then(|a| a.parse().ok()) {
        cfg.instructions = n;
    }
    if let Some(s) = args.next().and_then(|a| a.parse().ok()) {
        cfg.seed = s;
    }
    cfg
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Prints a normalised-metric table (workload rows x scheme columns) for a
/// scheme-comparison result, one metric at a time, followed by the mean.
pub fn print_comparison_metric(
    title: &str,
    rows: &[pra_core::experiments::ComparisonRow],
    metric: fn(&pra_core::experiments::ComparisonRow) -> f64,
    paper_note: &str,
) {
    use std::collections::BTreeSet;
    let schemes: Vec<String> = {
        let mut seen = BTreeSet::new();
        rows.iter()
            .filter(|r| seen.insert(r.scheme.clone()))
            .map(|r| r.scheme.clone())
            .collect()
    };
    let workloads: Vec<String> = {
        let mut seen = BTreeSet::new();
        rows.iter()
            .filter(|r| seen.insert(r.workload.clone()))
            .map(|r| r.workload.clone())
            .collect()
    };
    println!("=== {title} (normalised to baseline) ===");
    let header = {
        let mut h = format!("{:<12}", "workload");
        for s in &schemes {
            h.push_str(&format!(" {s:>14}"));
        }
        h
    };
    println!("{header}");
    rule(&header);
    let mut sums = vec![0.0f64; schemes.len()];
    for w in &workloads {
        let mut line = format!("{w:<12}");
        for (i, s) in schemes.iter().enumerate() {
            let v = rows
                .iter()
                .find(|r| &r.workload == w && &r.scheme == s)
                .map(metric)
                .unwrap_or(f64::NAN);
            sums[i] += v / workloads.len() as f64;
            line.push_str(&format!(" {v:>14.3}"));
        }
        println!("{line}");
    }
    rule(&header);
    let mut line = format!("{:<12}", "average");
    for s in &sums {
        line.push_str(&format!(" {s:>14.3}"));
    }
    println!("{line}");
    println!("{paper_note}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.254), "25.4%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
