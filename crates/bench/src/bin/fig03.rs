//! Regenerates **Figure 3**: the proportion of dirty words in a cache line
//! when the line is evicted from the LLC, per benchmark (single-core
//! baseline).

use bench::{config_from_args, pct, rule};
use pra_core::experiments::fig3;

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 3 ({} instructions/core)...",
        cfg.instructions
    );
    let rows = fig3(&cfg);
    let header = format!(
        "{:<12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | avg words",
        "benchmark", "1w", "2w", "3w", "4w", "5w", "6w", "7w", "8w"
    );
    println!("{header}");
    rule(&header);
    let mut avg = [0.0f64; 8];
    for (name, dist) in &rows {
        let mean_words: f64 = dist
            .iter()
            .enumerate()
            .map(|(k, p)| (k as f64 + 1.0) * p)
            .sum();
        println!(
            "{name:<12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {mean_words:>6.2}",
            pct(dist[0]),
            pct(dist[1]),
            pct(dist[2]),
            pct(dist[3]),
            pct(dist[4]),
            pct(dist[5]),
            pct(dist[6]),
            pct(dist[7]),
        );
        for (a, d) in avg.iter_mut().zip(dist) {
            *a += d / rows.len() as f64;
        }
    }
    rule(&header);
    let mean_words: f64 = avg
        .iter()
        .enumerate()
        .map(|(k, p)| (k as f64 + 1.0) * p)
        .sum();
    println!(
        "{:<12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {mean_words:>6.2}",
        "average",
        pct(avg[0]),
        pct(avg[1]),
        pct(avg[2]),
        pct(avg[3]),
        pct(avg[4]),
        pct(avg[5]),
        pct(avg[6]),
        pct(avg[7]),
    );
    println!(
        "(paper: single-word-dominated with a small fully-dirty mode; write \
         activation granularity averages 1/8 for ~36-39% of activations)"
    );
}
