//! Regenerates **Figure 12**: normalised DRAM row-activation, I/O and total
//! power of FGA, Half-DRAM and PRA, across the 14 four-core workloads,
//! relaxed close-page.

use bench::{config_from_args, print_comparison_metric};
use pra_core::experiments::fig12_13;

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 12 ({} instructions/core, 14 workloads x 3 schemes + baselines)...",
        cfg.instructions
    );
    let rows = fig12_13(&cfg);
    print_comparison_metric(
        "Figure 12(a): row activation power",
        &rows,
        |r| r.norm_act_power,
        "paper: PRA up to -43%, avg -34%; FGA/Half-DRAM save more (half rows on all traffic)",
    );
    print_comparison_metric(
        "Figure 12(b): I/O power",
        &rows,
        |r| r.norm_io_power,
        "paper: PRA up to -58%, avg -45%; Half-DRAM unchanged; FGA only via longer runtime",
    );
    print_comparison_metric(
        "Figure 12(c): total DRAM power",
        &rows,
        |r| r.norm_total_power,
        "paper: PRA up to -32%, avg -23%; FGA avg -15%; Half-DRAM avg -11%",
    );
}
