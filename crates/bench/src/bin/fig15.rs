//! Regenerates **Figure 15**: DBI vs PRA vs the combined DBI + PRA scheme.
//! The paper shows bzip2, GUPS and em3d individually plus the 14-workload
//! mean.

use bench::config_from_args;
use pra_core::experiments::{fig15, mean_by_scheme, ComparisonRow};

fn print_workload(rows: &[ComparisonRow], workload: &str) {
    println!("--- {workload} ---");
    for r in rows.iter().filter(|r| r.workload == workload) {
        println!(
            "{:<10} power {:>7.3}  perf {:>7.3}  energy {:>7.3}  EDP {:>7.3}",
            r.scheme, r.norm_total_power, r.norm_performance, r.norm_energy, r.norm_edp
        );
    }
    println!();
}

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 15 ({} instructions/core, DBI/PRA/DBI+PRA)...",
        cfg.instructions
    );
    let rows = fig15(&cfg);
    println!("Figure 15: DBI vs PRA vs DBI+PRA, normalised to baseline");
    println!();
    for w in ["bzip2", "GUPS", "em3d"] {
        print_workload(&rows, w);
    }
    println!("--- MEAN (all 14 workloads) ---");
    for (scheme, m) in mean_by_scheme(&rows) {
        println!(
            "{scheme:<10} power {:>7.3}  perf {:>7.3}  energy {:>7.3}  EDP {:>7.3}",
            m[2], m[3], m[4], m[5]
        );
    }
    println!();
    println!(
        "paper: DBI helps performance, PRA helps power; the combination beats \
         DBI alone on power but trails PRA alone (extra false row-buffer hits \
         from DBI's write bursts)."
    );
}
