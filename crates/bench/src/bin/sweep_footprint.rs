//! Sensitivity sweep: PRA's saving versus working-set size. Cache-resident
//! footprints generate no DRAM traffic, so there is nothing to save; the
//! benefit grows as the footprint spills out of the 4 MB LLC.

use bench::config_from_args;
use pra_core::{Scheme, SimBuilder};
use workloads::{AccessPattern, BenchProfile};

fn profile(footprint_kb: u64) -> BenchProfile {
    BenchProfile {
        name: "sweep",
        compute_per_mem: 8,
        store_fraction: 0.45,
        rmw_prob: 0.95,
        pattern: AccessPattern::Random,
        stores_stream: false,
        footprint_lines: footprint_kb * 1024 / 64,
        dirty_words_dist: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    }
}

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "sweeping footprint ({} instructions/core)...",
        cfg.instructions
    );
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>10}",
        "footprint", "DRAM reads", "base total mW", "PRA total mW", "saving"
    );
    for footprint_kb in [256u64, 1024, 4096, 32 * 1024, 256 * 1024] {
        let run = |scheme: Scheme| {
            let mut b = SimBuilder::new()
                .homogeneous(profile(footprint_kb), 4)
                .name("sweep")
                .scheme(scheme)
                .instructions(cfg.instructions)
                .seed(cfg.seed);
            if let Some(w) = cfg.warmup {
                b = b.warmup_mem_ops(w);
            }
            b.run()
        };
        let base = run(Scheme::Baseline);
        let pra = run(Scheme::Pra);
        println!(
            "{:>9} KB {:>12} {:>14.1} {:>14.1} {:>9.1}%",
            footprint_kb,
            base.dram.reads_completed,
            base.power.total(),
            pra.power.total(),
            (1.0 - pra.power.total() / base.power.total()) * 100.0
        );
    }
    println!();
    println!(
        "per-core footprints at or under the shared 4 MB LLC stay cache-resident \
         (background power only); once the working set spills, PRA's saving \
         approaches its GUPS-like asymptote."
    );
}
