//! Extension study: PRA under all three row-buffer management policies —
//! the paper's relaxed and restricted close-page pair plus a conventional
//! open-page controller. Shows where PRA's benefit and its false-hit cost
//! move as the policy keeps rows open longer.

use bench::config_from_args;
use dram_sim::PagePolicy;
use pra_core::{Scheme, SimBuilder};

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running policy study ({} instructions/core)...",
        cfg.instructions
    );
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "workload", "policy", "base mW", "PRA mW", "saving", "falsehit", "PRA IPC"
    );
    for profile in [workloads::libquantum(), workloads::gups()] {
        for (label, policy) in [
            ("relaxed", PagePolicy::RelaxedClosePage),
            ("restricted", PagePolicy::RestrictedClosePage),
            ("open-page", PagePolicy::OpenPage),
        ] {
            let run = |scheme: Scheme| {
                let mut b = SimBuilder::new()
                    .homogeneous(profile, 4)
                    .name(profile.name)
                    .scheme(scheme)
                    .policy(policy)
                    .instructions(cfg.instructions)
                    .seed(cfg.seed);
                if let Some(w) = cfg.warmup {
                    b = b.warmup_mem_ops(w);
                }
                b.run()
            };
            let base = run(Scheme::Baseline);
            let pra = run(Scheme::Pra);
            println!(
                "{:<12} {:<12} {:>9.1} {:>9.1} {:>7.1}% {:>9} {:>10.2}",
                profile.name,
                label,
                base.power.total(),
                pra.power.total(),
                (1.0 - pra.power.total() / base.power.total()) * 100.0,
                pra.dram.read.false_hits + pra.dram.write.false_hits,
                pra.ipc_sum(),
            );
        }
    }
    println!();
    println!(
        "open-page keeps partial rows open longest, so PRA's false row-buffer \
         hits concentrate there; restricted close-page maximises activations \
         and thus PRA's relative activation saving (the paper's Fig. 14 \
         setting)."
    );
}
