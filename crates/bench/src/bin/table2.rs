//! Regenerates **Table 2**: die area and row-activation energy breakdown of
//! the 2 Gb x8 DDR3-1600 chip. Pure model output — no simulation.

use pra_core::experiments::table2;

fn main() {
    let (energy, area) = table2();
    println!("Table 2: DRAM die area and row activation energy (2 Gb x8 DDR3-1600)");
    println!();
    println!("Area (mm^2)                       paper");
    println!(
        "  DRAM cell              {:>7.3}  4.677",
        area.dram_cell_mm2
    );
    println!(
        "  Sense amplifier        {:>7.3}  1.909",
        area.sense_amplifier_mm2
    );
    println!(
        "  Row predecoder         {:>7.3}  0.067",
        area.row_predecoder_mm2
    );
    println!(
        "  Local wordline driver  {:>7.3}  1.617",
        area.local_wordline_driver_mm2
    );
    println!("  Total die area         {:>7.3}  11.884", area.total_mm2);
    println!();
    println!("Energy per MAT (pJ)");
    println!(
        "  Local bitline          {:>7.3}  15.583",
        energy.local_bitline_pj
    );
    println!(
        "  Local sense amplifier  {:>7.3}  1.257",
        energy.local_sense_amp_pj
    );
    println!(
        "  Local wordline         {:>7.3}  0.046",
        energy.local_wordline_pj
    );
    println!(
        "  Row decoder            {:>7.3}  0.035",
        energy.row_decoder_pj
    );
    println!(
        "  Total per MAT          {:>7.3}  16.921",
        energy.per_mat_energy_pj()
    );
    println!();
    println!("Energy per bank (pJ)");
    println!(
        "  Row activation bus     {:>7.3}  17.944",
        energy.activation_bus_pj
    );
    println!(
        "  Row predecoder         {:>7.3}  0.072",
        energy.row_predecoder_pj
    );
    println!(
        "  Total per activation   {:>7.3}  288.752",
        energy.full_row_energy_pj()
    );
}
