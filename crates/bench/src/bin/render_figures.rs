//! Renders the reproduced figures as standalone SVG files under
//! `results/`: Figure 2 (baseline power breakdown), Figure 9 (activation
//! energy curve), Figure 11 (granularity proportions), and Figures 12/13
//! (normalised scheme comparison).
//!
//! ```bash
//! cargo run -p bench --release --bin render_figures -- 100000
//! ```

use std::fs;
use std::path::Path;

use bench::chart::{BarChart, BarGroup, LineChart};
use bench::config_from_args;
use dram_sim::PagePolicy;
use pra_core::experiments::{fig11, fig12_13, fig2, fig9, ComparisonRow};

fn write(path: &Path, name: &str, svg: &str) {
    let file = path.join(name);
    fs::write(&file, svg).unwrap_or_else(|e| panic!("cannot write {}: {e}", file.display()));
    println!("wrote {}", file.display());
}

fn comparison_chart(
    rows: &[ComparisonRow],
    title: &str,
    metric: fn(&ComparisonRow) -> f64,
) -> BarChart {
    let schemes: Vec<String> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.scheme) {
                seen.push(r.scheme.clone());
            }
        }
        seen
    };
    let mut groups: Vec<BarGroup> = Vec::new();
    for r in rows {
        if groups
            .last()
            .map(|g: &BarGroup| g.label != r.workload)
            .unwrap_or(true)
        {
            groups.push(BarGroup {
                label: r.workload.clone(),
                values: Vec::new(),
            });
        }
        groups
            .last_mut()
            .expect("just pushed")
            .values
            .push(metric(r));
    }
    BarChart {
        title: title.to_string(),
        y_label: "normalised to baseline".to_string(),
        series: schemes,
        groups,
        reference: Some(1.0),
    }
}

fn main() {
    let cfg = config_from_args();
    let out = Path::new("results");
    fs::create_dir_all(out).expect("create results/");

    eprintln!("figure 9 (static model)...");
    let fig9_svg = LineChart {
        title: "Figure 9: row activation energy vs MATs activated".into(),
        x_label: "MATs activated".into(),
        y_label: "energy (pJ)".into(),
        points: fig9()
            .iter()
            .map(|p| (f64::from(p.mats), p.energy_pj))
            .collect(),
    }
    .to_svg();
    write(out, "fig09.svg", &fig9_svg);

    eprintln!("figure 2 ({} instructions/core)...", cfg.instructions);
    let power_rows = fig2(&cfg);
    let labels = dram_power::PowerBreakdown::component_labels();
    let fig2_chart = BarChart {
        title: "Figure 2: baseline DRAM power breakdown".into(),
        y_label: "share of total power".into(),
        series: labels.iter().map(|s| s.to_string()).collect(),
        groups: power_rows
            .iter()
            .map(|(name, p)| BarGroup {
                label: name.clone(),
                values: p.components().iter().map(|c| c / p.total()).collect(),
            })
            .collect(),
        reference: None,
    };
    write(out, "fig02.svg", &fig2_chart.to_svg());

    eprintln!("figure 11 (PRA granularities, relaxed)...");
    let granularity = fig11(&cfg, PagePolicy::RelaxedClosePage);
    let fig11_chart = BarChart {
        title: "Figure 11: PRA activation granularities (relaxed close-page)".into(),
        y_label: "proportion of activations".into(),
        series: (1..=8).map(|k| format!("{k}/8")).collect(),
        groups: granularity
            .iter()
            .map(|(name, dist)| BarGroup {
                label: name.clone(),
                values: dist.to_vec(),
            })
            .collect(),
        reference: None,
    };
    write(out, "fig11.svg", &fig11_chart.to_svg());

    eprintln!("figures 12/13 (scheme comparison)...");
    let rows = fig12_13(&cfg);
    write(
        out,
        "fig12_total_power.svg",
        &comparison_chart(&rows, "Figure 12(c): total DRAM power", |r| {
            r.norm_total_power
        })
        .to_svg(),
    );
    write(
        out,
        "fig13_performance.svg",
        &comparison_chart(&rows, "Figure 13(a): weighted speedup", |r| {
            r.norm_performance
        })
        .to_svg(),
    );
    write(
        out,
        "fig13_edp.svg",
        &comparison_chart(&rows, "Figure 13(c): energy-delay product", |r| r.norm_edp).to_svg(),
    );
    println!("done.");
}
