//! Regenerates **Figure 7**: partial-row-activation timing versus
//! conventional full-row-activation timing, as ASCII command/data-bus
//! diagrams derived from the Table 3 parameters.

use dram_sim::TimingParams;
use pra_core::timing_diagram::{read_timeline, render, write_latencies, write_timeline};

fn main() {
    let t = TimingParams::ddr3_1600_table3();
    println!("Figure 7(a): partial row activation (write, PRA# pulled low)\n");
    print!("{}", render(&write_timeline(&t, true)));
    let (wr, data, pre) = write_latencies(&t, true);
    println!("  -> WR at tRCD+tCK = {wr}, data at +WL = {data}, PRE at {pre}\n");

    println!("Figure 7(b): full row activation (write, PRA# pulled high)\n");
    print!("{}", render(&write_timeline(&t, false)));
    let (wr, data, pre) = write_latencies(&t, false);
    println!("  -> WR at tRCD = {wr}, data at +WL = {data}, PRE at {pre}\n");

    println!("read path (always full activation, full bandwidth):\n");
    print!("{}", render(&read_timeline(&t)));
    println!(
        "\nthe one-cycle PRA mask transfer is the entire timing cost of a \
         partial activation; reads never pay it."
    );
}
