//! Regenerates **Table 3**'s power rows: the per-granularity row-activation
//! powers, the Eq. (1)/(2) derivation, and every other component power
//! parameter. Pure model output — no simulation.

use pra_core::experiments::table3;

fn main() {
    let data = table3();
    println!("Table 3: DRAM chip power parameters (mW)");
    println!();
    let p = &data.params;
    println!(
        "  PRE STBY {:>6.1}   PRE PDN {:>6.1}   ACT STBY {:>6.1}   REF {:>6.1}",
        p.pre_stby_mw, p.pre_pdn_mw, p.act_stby_mw, p.ref_mw
    );
    println!(
        "  RD       {:>6.1}   WR      {:>6.1}   RD I/O   {:>6.1}",
        p.rd_mw, p.wr_mw, p.rd_io_mw
    );
    println!(
        "  WR ODT   {:>6.1}   RD TERM {:>6.1}   WR TERM  {:>6.1}",
        p.wr_odt_mw, p.rd_term_mw, p.wr_term_mw
    );
    println!();
    println!("Row activation power by granularity:");
    println!(
        "{:>10} {:>12} {:>16}",
        "rows", "published", "CACTI-projected"
    );
    let labels = ["1/8", "2/8", "3/8", "4/8", "5/8", "6/8", "7/8", "full"];
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{label:>10} {:>12.1} {:>16.2}",
            data.published_act_mw[i], data.cacti_projected_mw[i]
        );
    }
    println!();
    println!(
        "Eq. (1)/(2) check: P_ACT(full) = {:.2} mW (paper: 22.2 mW) with \
         IDD0/IDD2N/IDD3N calibrated as documented in dram-power.",
        data.eq12_full_row_mw
    );
}
