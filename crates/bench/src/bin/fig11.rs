//! Regenerates **Figure 11**: the proportion of row-activation
//! granularities under PRA, for both the restricted and the relaxed
//! close-page policies, across the 14 four-core workloads.

use bench::{config_from_args, pct, rule};
use dram_sim::PagePolicy;
use pra_core::experiments::fig11;

fn print_policy(name: &str, rows: &[(String, [f64; 8])], paper_avg: [f64; 8]) {
    println!("=== {name} ===");
    let header = format!(
        "{:<12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload", "1/8", "2/8", "3/8", "4/8", "5/8", "6/8", "7/8", "full"
    );
    println!("{header}");
    rule(&header);
    for (workload, dist) in rows {
        println!(
            "{workload:<12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            pct(dist[0]),
            pct(dist[1]),
            pct(dist[2]),
            pct(dist[3]),
            pct(dist[4]),
            pct(dist[5]),
            pct(dist[6]),
            pct(dist[7]),
        );
    }
    rule(&header);
    println!(
        "{:<12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "paper avg",
        pct(paper_avg[0]),
        pct(paper_avg[1]),
        pct(paper_avg[2]),
        pct(paper_avg[3]),
        pct(paper_avg[4]),
        pct(paper_avg[5]),
        pct(paper_avg[6]),
        pct(paper_avg[7]),
    );
    println!();
}

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 11 ({} instructions/core, 2 policies x 14 workloads)...",
        cfg.instructions
    );
    let restricted = fig11(&cfg, PagePolicy::RestrictedClosePage);
    print_policy(
        "restricted close-page",
        &restricted,
        [0.36, 0.023, 0.004, 0.012, 0.0004, 0.0004, 0.0002, 0.60],
    );
    let relaxed = fig11(&cfg, PagePolicy::RelaxedClosePage);
    print_policy(
        "relaxed close-page",
        &relaxed,
        [0.39, 0.02, 0.0043, 0.0045, 0.0005, 0.0005, 0.0002, 0.58],
    );
}
