//! Reproduces the Section 3 related-work comparison: PRA's intra-chip
//! coverage versus the Skinflint DRAM System's (SDS) inter-chip coverage.
//! Paper: *"our scheme reduces average row activation granularity by 42%
//! whereas SDS can reduce average chip access granularity by only 16%"*.

use pra_core::sds::{compare_coverage, paper_comparison, ValueWidthDist};

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    let c = paper_comparison(samples, 1);
    println!("Section 3 coverage comparison ({samples} synthetic writebacks)\n");
    println!(
        "PRA  average write activation granularity: {:.1}% of a row  -> {:.1}% reduction (paper: 42%)",
        c.pra_write_granularity * 100.0,
        c.pra_reduction * 100.0
    );
    println!(
        "SDS  average chip access granularity:      {:.1}% of chips -> {:.1}% reduction (paper: 16%)",
        c.sds_chip_fraction * 100.0,
        c.sds_reduction * 100.0
    );
    // The paper's quoted 42% / 16% average over all accesses (reads use
    // full rows / all chips in both schemes); apply Table 1's shares.
    let (pra_all, sds_all) = c.overall_reductions(0.42, 0.36);
    println!();
    println!("averaged over all accesses (reads dilute both schemes, Table 1 shares):");
    println!(
        "  PRA overall activation-granularity reduction: {:.1}% (paper: 42%)",
        pra_all * 100.0
    );
    println!(
        "  SDS overall chip-access reduction:             {:.1}% (paper: 16%)",
        sds_all * 100.0
    );
    println!();
    println!("sensitivity to the written-value width mix (single-dirty-word lines):");
    println!(
        "{:>24} {:>16} {:>16}",
        "width mix [1,2,4,8]B", "PRA reduction", "SDS reduction"
    );
    let one_word = {
        let mut d = [0.0; 8];
        d[0] = 1.0;
        d
    };
    for (label, dist) in [
        (
            "all 8B (pointers)",
            ValueWidthDist {
                p: [0.0, 0.0, 0.0, 1.0],
            },
        ),
        (
            "all 4B (ints)",
            ValueWidthDist {
                p: [0.0, 0.0, 1.0, 0.0],
            },
        ),
        ("typical mix", ValueWidthDist::typical()),
        (
            "all 1B (bytes)",
            ValueWidthDist {
                p: [1.0, 0.0, 0.0, 0.0],
            },
        ),
    ] {
        let c = compare_coverage(one_word, dist, samples / 4, 1);
        println!(
            "{label:>24} {:>15.1}% {:>15.1}%",
            c.pra_reduction * 100.0,
            c.sds_reduction * 100.0
        );
    }
    println!();
    println!(
        "structure of the result: PRA skips whole clean words regardless of \
         how the dirty word was written; SDS can only skip chips when stores \
         are narrower than a word, because one full dirty word touches every \
         byte position (= every chip)."
    );
}
