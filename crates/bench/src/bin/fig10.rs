//! Regenerates **Figure 10**: PRA's impact on row-buffer read, write and
//! total hit rates (false row-buffer hits counted as misses), across the 14
//! four-core workloads, relaxed close-page.

use bench::{config_from_args, pct, rule};
use pra_core::experiments::fig10;

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 10 ({} instructions/core, 14 workloads)...",
        cfg.instructions
    );
    let rows = fig10(&cfg);
    let header = format!(
        "{:<12} | {:>8} {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "workload", "hit rd", "hit wr", "hit tot", "false rd", "false wr", "conv rd", "conv wr"
    );
    println!("{header}");
    rule(&header);
    let mut sums = [0.0f64; 5];
    for row in &rows {
        println!(
            "{:<12} | {:>8} {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
            row.name,
            pct(row.hit_rates.0),
            pct(row.hit_rates.1),
            pct(row.hit_rates.2),
            pct(row.false_rates.0),
            pct(row.false_rates.1),
            pct(row.conventional.0),
            pct(row.conventional.1),
        );
        for (s, v) in sums.iter_mut().zip([
            row.hit_rates.0,
            row.hit_rates.1,
            row.hit_rates.2,
            row.false_rates.0,
            row.false_rates.1,
        ]) {
            *s += v / rows.len() as f64;
        }
    }
    rule(&header);
    println!(
        "{:<12} | {:>8} {:>8} {:>8} | {:>9} {:>9} |",
        "average",
        pct(sums[0]),
        pct(sums[1]),
        pct(sums[2]),
        pct(sums[3]),
        pct(sums[4]),
    );
    println!();
    println!(
        "paper: read false hits are rare (max 0.26%, avg 0.04%); total hit \
         rate drops only ~0.1% (from 11.2% to 11.1%)."
    );
}
