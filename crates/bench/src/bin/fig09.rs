//! Regenerates **Figure 9**: row activation energy as a function of the
//! number of MATs activated. Pure model output — no simulation.

use bench::pct;
use pra_core::experiments::fig9;

fn main() {
    println!("Figure 9: activation energy vs MATs activated (2 Gb x8 DDR3, 20 nm)");
    println!("{:>5} {:>12} {:>10}", "MATs", "energy (pJ)", "vs full");
    for p in fig9() {
        println!("{:>5} {:>12.3} {:>10}", p.mats, p.energy_pj, pct(p.ratio));
    }
    println!();
    println!(
        "paper's observation: halving the MATs does not halve energy because \
         the activation bus and row predecoder are shared (8-MAT ratio stays \
         above 50%)."
    );
}
