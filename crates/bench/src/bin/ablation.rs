//! Ablation study of PRA's design choices (the knobs DESIGN.md calls out):
//!
//! * **no-relax** — partial activations still count as full activations
//!   against tRRD/tFAW (isolates the timing-relaxation benefit of
//!   Section 4.1.3).
//! * **no-extra-cycle** — the PRA mask is delivered for free instead of
//!   costing one cycle of activate-to-column delay (upper-bounds the cost
//!   of the address-bus mask transfer of Fig. 7a).
//! * **act-only** — partial activation without write-I/O scaling (isolates
//!   how much of PRA's saving comes from activation power versus from
//!   transferring only dirty words).
//! * **quarter-floor** — activations never narrower than half a row
//!   (what PRA would save if, like an extended Half-DRAM, the minimum
//!   granularity were coarser).
//!
//! Run over a write-intensive homogeneous workload (GUPS x4).

use bench::config_from_args;
use dram_sim::{SchemeBehavior, WriteActPolicy};
use pra_core::{Scheme, SimBuilder};

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running PRA ablations ({} instructions/core)...",
        cfg.instructions
    );

    let pra = SchemeBehavior::pra();
    let variants: Vec<(&str, SchemeBehavior)> = vec![
        ("baseline", SchemeBehavior::baseline()),
        ("PRA (full)", pra),
        (
            "PRA no-relax",
            SchemeBehavior {
                name: "PRA-norelax",
                relaxed_act_timing: false,
                ..pra
            },
        ),
        (
            "PRA no-extra-cycle",
            SchemeBehavior {
                name: "PRA-free-mask",
                partial_act_extra_cycles: 0,
                ..pra
            },
        ),
        (
            "PRA act-only",
            SchemeBehavior {
                name: "PRA-act-only",
                scale_write_io: false,
                ..pra
            },
        ),
        (
            "PRA half-floor",
            SchemeBehavior {
                name: "PRA-half-floor",
                write_act: WriteActPolicy::FixedMats(8),
                scale_write_io: true,
                ..pra
            },
        ),
    ];

    let run = |behavior: SchemeBehavior| {
        let mut b = SimBuilder::new()
            .homogeneous(workloads::gups(), 4)
            .name("GUPS")
            .scheme(Scheme::Pra)
            .scheme_behavior_override(behavior)
            .instructions(cfg.instructions)
            .seed(cfg.seed);
        if let Some(w) = cfg.warmup {
            b = b.warmup_mem_ops(w);
        }
        b.run()
    };

    let base = run(SchemeBehavior::baseline());
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "act mW", "wr-io mW", "total mW", "vs base", "IPC sum"
    );
    for (label, behavior) in variants {
        let r = run(behavior);
        println!(
            "{label:<20} {:>10.1} {:>10.1} {:>10.1} {:>9.1}% {:>10.2}",
            r.power.act_pre,
            r.power.wr_io,
            r.power.total(),
            (r.power.total() / base.power.total() - 1.0) * 100.0,
            r.ipc_sum(),
        );
    }
    println!();
    println!(
        "interpretation: act-only vs full shows the write-I/O contribution; \
         no-relax shows the tFAW/tRRD headroom; half-floor shows why the \
         paper pushes below half-row granularity."
    );
}
