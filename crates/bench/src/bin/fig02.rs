//! Regenerates **Figure 2**: baseline DRAM power-consumption breakdown
//! (ACT-PRE, RD, WR, RD I/O, WR I/O, BG, REF) per benchmark, single-core,
//! relaxed close-page.

use bench::{config_from_args, pct, rule};
use dram_power::PowerBreakdown;
use pra_core::experiments::fig2;

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 2 ({} instructions/core)...",
        cfg.instructions
    );
    let rows = fig2(&cfg);
    let labels = PowerBreakdown::component_labels();
    let header = format!(
        "{:<12} {:>9} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "benchmark",
        "total mW",
        labels[0],
        labels[1],
        labels[2],
        labels[3],
        labels[4],
        labels[5],
        labels[6]
    );
    println!("{header}");
    rule(&header);
    let mut act_shares = Vec::new();
    let mut io_shares = Vec::new();
    for (name, p) in &rows {
        let total = p.total();
        let shares = p.components().map(|c| c / total);
        println!(
            "{name:<12} {total:>9.1} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            pct(shares[0]),
            pct(shares[1]),
            pct(shares[2]),
            pct(shares[3]),
            pct(shares[4]),
            pct(shares[5]),
            pct(shares[6]),
        );
        act_shares.push(p.act_pre_share());
        io_shares.push(p.io_share());
    }
    rule(&header);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    println!(
        "ACT-PRE share: avg {} (paper ~25%), max {} (paper ~33%)",
        pct(avg(&act_shares)),
        pct(max(&act_shares))
    );
    println!(
        "I/O share:     avg {} (paper ~14%), max {} (paper ~19%)",
        pct(avg(&io_shares)),
        pct(max(&io_shares))
    );
}
