//! Sensitivity sweep: how PRA's power saving scales with the dirtiness of
//! written-back lines — the opportunity knob behind Figure 3. Sweeps a
//! synthetic workload whose stores dirty a single word with probability
//! `p`, and a full line otherwise.

use bench::config_from_args;
use pra_core::{Scheme, SimBuilder};
use workloads::{AccessPattern, BenchProfile};

fn profile(single_word_prob: f64) -> BenchProfile {
    let full_prob = 1.0 - single_word_prob;
    BenchProfile {
        name: "sweep",
        compute_per_mem: 8,
        store_fraction: 0.47,
        rmw_prob: 0.95,
        pattern: AccessPattern::Random,
        stores_stream: false,
        footprint_lines: 128 * 1024 * 1024 / 64,
        dirty_words_dist: [single_word_prob, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, full_prob],
    }
}

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "sweeping dirty-word distribution ({} instructions/core)...",
        cfg.instructions
    );
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "P(1 word)", "base total mW", "PRA total mW", "PRA saving"
    );
    for p in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let run = |scheme: Scheme| {
            let mut b = SimBuilder::new()
                .homogeneous(profile(p), 4)
                .name("sweep")
                .scheme(scheme)
                .instructions(cfg.instructions)
                .seed(cfg.seed);
            if let Some(w) = cfg.warmup {
                b = b.warmup_mem_ops(w);
            }
            b.run()
        };
        let base = run(Scheme::Baseline);
        let pra = run(Scheme::Pra);
        println!(
            "{:>12.2} {:>14.1} {:>14.1} {:>13.1}%",
            p,
            base.power.total(),
            pra.power.total(),
            (1.0 - pra.power.total() / base.power.total()) * 100.0
        );
    }
    println!();
    println!(
        "fully-dirty lines (P=0) leave PRA no opportunity; single-word lines \
         (P=1) are the GUPS-like best case the paper's Figure 3 motivates."
    );
}
