//! Extension study: does PRA's saving carry over from the paper's DDR3-1600
//! baseline to a DDR4-2400 system? The paper argues the row-overfetching
//! problem *grows* with newer, larger devices; this bin quantifies that on
//! the estimated DDR4 model (see `PowerParams::ddr4_2400_estimate` — not a
//! datasheet calibration).

use bench::config_from_args;
use pra_core::{DramGeneration, Scheme, SimBuilder};

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running DDR3 vs DDR4 outlook ({} instructions/core)...",
        cfg.instructions
    );
    println!(
        "{:<12} {:<6} {:>10} {:>10} {:>10} {:>9}",
        "workload", "gen", "base mW", "PRA mW", "saving", "IPC ratio"
    );
    for profile in [workloads::gups(), workloads::lbm(), workloads::mcf()] {
        for (label, generation) in [
            ("DDR3", DramGeneration::Ddr3),
            ("DDR4", DramGeneration::Ddr4),
        ] {
            let run = |scheme: Scheme| {
                let mut b = SimBuilder::new()
                    .homogeneous(profile, 4)
                    .name(profile.name)
                    .scheme(scheme)
                    .dram_generation(generation)
                    .instructions(cfg.instructions)
                    .seed(cfg.seed);
                if let Some(w) = cfg.warmup {
                    b = b.warmup_mem_ops(w);
                }
                b.run()
            };
            let base = run(Scheme::Baseline);
            let pra = run(Scheme::Pra);
            println!(
                "{:<12} {:<6} {:>10.1} {:>10.1} {:>9.1}% {:>9.3}",
                profile.name,
                label,
                base.power.total(),
                pra.power.total(),
                (1.0 - pra.power.total() / base.power.total()) * 100.0,
                pra.ipc_sum() / base.ipc_sum(),
            );
        }
    }
    println!();
    println!(
        "the asymmetric mechanism is generation-agnostic: whatever the device, \
         writes with few dirty words activate few MAT groups."
    );
}
