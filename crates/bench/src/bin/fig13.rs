//! Regenerates **Figure 13**: normalised performance (weighted speedup),
//! DRAM energy and energy-delay product of FGA, Half-DRAM and PRA, across
//! the 14 four-core workloads, relaxed close-page.

use bench::{config_from_args, print_comparison_metric};
use pra_core::experiments::fig12_13;

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 13 ({} instructions/core, 14 workloads x 3 schemes + baselines)...",
        cfg.instructions
    );
    let rows = fig12_13(&cfg);
    print_comparison_metric(
        "Figure 13(a): performance (weighted speedup)",
        &rows,
        |r| r.norm_performance,
        "paper: PRA -0.8% avg (max -4.8%); Half-DRAM +0.3% avg; FGA -14% avg (max -18%)",
    );
    print_comparison_metric(
        "Figure 13(b): DRAM energy",
        &rows,
        |r| r.norm_energy,
        "paper: PRA up to -34%, avg -23%",
    );
    print_comparison_metric(
        "Figure 13(c): energy-delay product",
        &rows,
        |r| r.norm_edp,
        "paper: PRA up to -32%, avg -22%",
    );
}
