//! Regenerates **Figure 14**: Half-DRAM vs PRA vs the combined
//! Half-DRAM + PRA scheme under the restricted close-page policy (the paper
//! reports 14-workload means).

use bench::config_from_args;
use pra_core::experiments::{fig14, mean_by_scheme};

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Figure 14 ({} instructions/core, restricted close-page, 3 schemes)...",
        cfg.instructions
    );
    let rows = fig14(&cfg);
    let means = mean_by_scheme(&rows);
    println!("Figure 14: 14-workload means, normalised to restricted-close-page baseline");
    println!(
        "{:<15} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "power", "perf", "energy", "EDP"
    );
    for (scheme, m) in &means {
        // m = [act, io, total power, perf, energy, edp]
        println!(
            "{scheme:<15} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            m[2], m[3], m[4], m[5]
        );
    }
    println!();
    println!(
        "paper: the combined scheme beats both components on power/energy/EDP \
         and shows the best performance (timing relaxation matters most under \
         restricted close-page)."
    );
}
