//! Regenerates **Table 1**: per-benchmark memory characteristics
//! (row-buffer hit rates, memory traffic split, row-activation split) on
//! the single-core baseline with the relaxed close-page policy.

use bench::{config_from_args, pct, rule};
use pra_core::experiments::{table1, Table1Row};

/// The paper's published Table 1, for side-by-side comparison:
/// (name, rb_hit_rd, rb_hit_wr, traffic_rd, traffic_wr, act_rd, act_wr) in %.
const PAPER: [(&str, f64, f64, f64, f64, f64, f64); 8] = [
    ("bzip2", 32.0, 1.0, 69.0, 31.0, 60.0, 40.0),
    ("lbm", 29.0, 18.0, 57.0, 43.0, 54.0, 46.0),
    ("libquantum", 73.0, 48.0, 66.0, 34.0, 50.0, 50.0),
    ("mcf", 18.0, 1.0, 79.0, 21.0, 76.0, 24.0),
    ("omnetpp", 47.0, 2.0, 71.0, 29.0, 57.0, 43.0),
    ("em3d", 5.0, 1.0, 51.0, 49.0, 50.0, 50.0),
    ("GUPS", 3.0, 1.0, 53.0, 47.0, 52.0, 48.0),
    ("LinkedList", 4.0, 1.0, 65.0, 35.0, 64.0, 36.0),
];

fn main() {
    let cfg = config_from_args();
    eprintln!(
        "running Table 1 ({} instructions/core)...",
        cfg.instructions
    );
    let rows = table1(&cfg);
    let header = format!(
        "{:<12} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | paper: hit rd/wr, traffic rd/wr, act rd/wr",
        "benchmark", "hit rd", "hit wr", "traf rd", "traf wr", "act rd", "act wr"
    );
    println!("{header}");
    rule(&header);
    let mut sums = [0.0f64; 6];
    for row in &rows {
        let Table1Row {
            name,
            rb_hit,
            traffic,
            activations,
        } = row;
        let paper = PAPER.iter().find(|p| p.0 == name);
        let paper_str = paper.map_or(String::new(), |p| {
            format!("{}/{}, {}/{}, {}/{}", p.1, p.2, p.3, p.4, p.5, p.6)
        });
        println!(
            "{name:<12} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {paper_str}",
            pct(rb_hit.0),
            pct(rb_hit.1),
            pct(traffic.0),
            pct(traffic.1),
            pct(activations.0),
            pct(activations.1),
        );
        for (s, v) in sums.iter_mut().zip([
            rb_hit.0,
            rb_hit.1,
            traffic.0,
            traffic.1,
            activations.0,
            activations.1,
        ]) {
            *s += v / rows.len() as f64;
        }
    }
    rule(&header);
    println!(
        "{:<12} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8} | 26/9, 64/36, 58/42",
        "average",
        pct(sums[0]),
        pct(sums[1]),
        pct(sums[2]),
        pct(sums[3]),
        pct(sums[4]),
        pct(sums[5]),
    );
}
