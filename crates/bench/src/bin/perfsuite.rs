//! Simulator performance suite: measures host throughput (simulated cycles
//! per host second) over four representative scenarios and writes a
//! schema-versioned `BENCH_perfsuite.json` report — the repo's perf
//! trajectory. Unlike the figure/table binaries this one reports on the
//! *simulator*, not the simulated system.
//!
//! ```bash
//! cargo run -p bench --release --bin perfsuite            # full suite
//! cargo run -p bench --release --bin perfsuite -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` (short runs, one timed iteration), `--iters N` (timed
//! iterations per scenario, default 3), `--out PATH` (default
//! `BENCH_perfsuite.json`). Every scenario also runs once under the
//! `sim-prof` profiler to capture its top spans and to self-check that
//! profiling leaves the simulation state digest untouched.

use bench::timing::measure;
use pra_core::{Report, Scheme, SimBuilder};
use sim_fault::FaultPlan;

/// Report schema version; bump when fields change shape.
const SCHEMA_VERSION: u32 = 1;
/// `BENCH_power.json` schema version; bump when fields change shape.
const POWER_SCHEMA_VERSION: u32 = 1;
/// Spans kept per scenario in the JSON profile excerpt.
const PROFILE_TOP_K: usize = 5;

struct Scenario {
    name: &'static str,
    desc: &'static str,
    build: fn(u64) -> SimBuilder,
}

fn fault_plan() -> FaultPlan {
    FaultPlan::from_toml_str(
        "# perfsuite stress plan\n\
         seed = 7\n\
         mask_corrupt_rate = 0.02\n\
         command_drop_rate = 0.001\n",
    )
    .expect("inline plan is valid")
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "paper_1ch",
            desc: "paper config, single channel: GUPS x1 under PRA",
            build: |n| {
                SimBuilder::new()
                    .app(workloads::gups())
                    .scheme(Scheme::Pra)
                    .instructions(n)
            },
        },
        Scenario {
            name: "queue_saturated",
            desc: "queue-saturated stream: libquantum x4, baseline",
            build: |n| {
                SimBuilder::new()
                    .homogeneous(workloads::libquantum(), 4)
                    .scheme(Scheme::Baseline)
                    .instructions(n)
            },
        },
        Scenario {
            name: "multicore_mix",
            desc: "multi-core mix: MIX1 under PRA",
            build: |n| {
                SimBuilder::new()
                    .mix([
                        workloads::bzip2(),
                        workloads::lbm(),
                        workloads::libquantum(),
                        workloads::omnetpp(),
                    ])
                    .name("MIX1")
                    .scheme(Scheme::Pra)
                    .instructions(n)
            },
        },
        Scenario {
            name: "fault_plan",
            desc: "fault-plan run: GUPS x1 under PRA with injected faults",
            build: |n| {
                SimBuilder::new()
                    .app(workloads::gups())
                    .scheme(Scheme::Pra)
                    .instructions(n)
                    .faults(fault_plan())
            },
        },
    ]
}

struct ScenarioResult {
    name: &'static str,
    report: Report,
    instructions: u64,
    iters: u32,
    median_ns: u128,
    min_ns: u128,
    digest_profiled_matches: bool,
    profile_top: Vec<sim_prof::SpanStat>,
}

impl ScenarioResult {
    fn mem_cycles_per_sec(&self) -> f64 {
        per_sec(self.report.dram.cycles, self.median_ns)
    }

    fn cpu_cycles_per_sec(&self) -> f64 {
        per_sec(self.report.cpu_cycles, self.median_ns)
    }
}

fn per_sec(cycles: u64, ns: u128) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    cycles as f64 * 1e9 / ns as f64
}

fn run_scenario(
    s: &Scenario,
    instructions: u64,
    warmup: Option<u64>,
    iters: u32,
) -> ScenarioResult {
    let mut builder = (s.build)(instructions);
    if let Some(w) = warmup {
        builder = builder.warmup_mem_ops(w);
    }
    // Timed iterations run unprofiled — the throughput number must reflect
    // the production configuration.
    let report = builder.run();
    let samples = measure(0, iters, || builder.run());
    // One extra profiled run captures where the host time goes and proves
    // (via the digest) that instrumentation never perturbs the simulation.
    sim_prof::reset();
    sim_prof::enable();
    let profiled = builder.run();
    sim_prof::disable();
    let profile = sim_prof::take_report();
    ScenarioResult {
        name: s.name,
        digest_profiled_matches: profiled.state_digest() == report.state_digest(),
        report,
        instructions,
        iters,
        median_ns: samples.median_ns().unwrap_or(0),
        min_ns: samples.min_ns().unwrap_or(0),
        profile_top: profile.top(PROFILE_TOP_K).into_iter().cloned().collect(),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(quick: bool, iters: u32, results: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"suite\": \"perfsuite\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(r.name)));
        out.push_str(&format!(
            "      \"workload\": \"{}\",\n",
            json_escape(&r.report.workload)
        ));
        out.push_str(&format!(
            "      \"scheme\": \"{}\",\n",
            json_escape(&r.report.scheme)
        ));
        out.push_str(&format!("      \"cores\": {},\n", r.report.ipc.len()));
        out.push_str(&format!("      \"instructions\": {},\n", r.instructions));
        out.push_str(&format!("      \"iters\": {},\n", r.iters));
        out.push_str(&format!(
            "      \"sim_mem_cycles\": {},\n",
            r.report.dram.cycles
        ));
        out.push_str(&format!(
            "      \"sim_cpu_cycles\": {},\n",
            r.report.cpu_cycles
        ));
        out.push_str(&format!(
            "      \"host_seconds_median\": {:.6},\n",
            r.median_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "      \"host_seconds_min\": {:.6},\n",
            r.min_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "      \"mem_cycles_per_sec\": {:.1},\n",
            r.mem_cycles_per_sec()
        ));
        out.push_str(&format!(
            "      \"cpu_cycles_per_sec\": {:.1},\n",
            r.cpu_cycles_per_sec()
        ));
        out.push_str(&format!(
            "      \"state_digest\": \"{:#018x}\",\n",
            r.report.state_digest()
        ));
        out.push_str(&format!(
            "      \"digest_profiled_matches\": {},\n",
            r.digest_profiled_matches
        ));
        out.push_str("      \"profile_top\": [\n");
        for (j, span) in r.profile_top.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"span\": \"{}\", \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}}}{}\n",
                json_escape(&span.name),
                span.calls,
                span.total_ns,
                span.self_ns(),
                if j + 1 < r.profile_top.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the simulated-energy report: unlike the throughput numbers
/// these are properties of the *simulated* system, bit-deterministic for a
/// given scenario set, so the quick-mode file is committed to the repo and
/// diffs only when the energy model (or a scenario) changes.
fn render_power_json(quick: bool, results: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {POWER_SCHEMA_VERSION},\n"));
    out.push_str("  \"suite\": \"power\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let e = &r.report.energy;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(r.name)));
        out.push_str(&format!(
            "      \"workload\": \"{}\",\n",
            json_escape(&r.report.workload)
        ));
        out.push_str(&format!(
            "      \"scheme\": \"{}\",\n",
            json_escape(&r.report.scheme)
        ));
        out.push_str(&format!("      \"instructions\": {},\n", r.instructions));
        out.push_str(&format!(
            "      \"energy_pj\": {},\n",
            e.total().round() as u64
        ));
        out.push_str(&format!(
            "      \"avg_power_mw\": {},\n",
            r.report.power.total().round() as u64
        ));
        out.push_str("      \"breakdown_pj\": {\n");
        let fields = [
            ("act_pre", e.act_pre),
            ("rd", e.rd),
            ("wr", e.wr),
            ("rd_io", e.rd_io),
            ("wr_io", e.wr_io),
            ("bg", e.bg),
            ("refresh", e.refresh),
        ];
        for (j, (name, pj)) in fields.iter().enumerate() {
            out.push_str(&format!(
                "        \"{name}\": {}{}\n",
                pj.round() as u64,
                if j + 1 < fields.len() { "," } else { "" }
            ));
        }
        out.push_str("      }\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut iters: u32 = 3;
    let mut out_path = String::from("BENCH_perfsuite.json");
    let mut power_out_path = String::from("BENCH_power.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            "--power-out" => {
                power_out_path = args.next().expect("--power-out needs a path");
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: perfsuite [--quick] [--iters N] [--out PATH] [--power-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(iters > 0, "--iters must be at least 1");
    let (instructions, warmup) = if quick {
        (5_000, Some(20_000))
    } else {
        (50_000, None)
    };
    if quick {
        iters = iters.min(1);
    }
    eprintln!(
        "perfsuite: 4 scenarios, {instructions} instructions/core, {iters} timed iteration(s){}",
        if quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<16} {:>14} {:>12} {:>16} {:>10}",
        "scenario", "mem cycles", "host ms", "mem cycles/s", "digest ok"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    let mut results = Vec::new();
    for s in scenarios() {
        let r = run_scenario(&s, instructions, warmup, iters);
        eprintln!("  {}: {}", r.name, s.desc);
        println!(
            "{:<16} {:>14} {:>12.3} {:>16.0} {:>10}",
            r.name,
            r.report.dram.cycles,
            r.median_ns as f64 / 1e6,
            r.mem_cycles_per_sec(),
            r.digest_profiled_matches
        );
        results.push(r);
    }
    let json = render_json(quick, iters, &results);
    std::fs::write(&out_path, &json).expect("write perf report");
    eprintln!("wrote {out_path}");
    let power_json = render_power_json(quick, &results);
    std::fs::write(&power_out_path, &power_json).expect("write power report");
    eprintln!("wrote {power_out_path}");
    if results.iter().any(|r| !r.digest_profiled_matches) {
        eprintln!("error: profiling perturbed at least one state digest");
        std::process::exit(1);
    }
}
