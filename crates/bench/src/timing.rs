//! A minimal manual-timing harness for the `benches/` binaries.
//!
//! The workspace builds offline, so instead of criterion the benchmarks
//! use this: warm up, run a fixed number of timed iterations, report the
//! median wall-clock per iteration and derived element throughput. Results
//! are printed as aligned text, one line per benchmark.

use std::hint::black_box;
use std::time::Instant;

/// Runs `f` `iters` times after `warmup` untimed runs and reports the
/// median iteration time; `elements` is the per-iteration work unit count
/// used for the throughput column. The closure's return value is
/// [`black_box`]ed so the work is not optimised away.
pub fn bench<T>(name: &str, elements: u64, warmup: u32, iters: u32, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples_ns: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples_ns.push(start.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    let per_elem = median as f64 / elements as f64;
    let throughput = if median > 0 {
        elements as f64 * 1e9 / median as f64
    } else {
        f64::NAN
    };
    println!(
        "{name:<44} {:>10.3} ms/iter {per_elem:>9.1} ns/elem {:>12.0} elem/s",
        median as f64 / 1e6,
        throughput
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_expected_times() {
        let mut calls = 0u32;
        bench("noop", 1, 2, 3, || calls += 1);
        assert_eq!(calls, 5);
    }
}
