//! A minimal manual-timing harness for the `benches/` binaries.
//!
//! The workspace builds offline, so instead of criterion the benchmarks
//! use this: warm up, run a fixed number of timed iterations, report the
//! median wall-clock per iteration and derived element throughput. Results
//! are printed as aligned text, one line per benchmark.
//!
//! The measurement core is [`measure`], which returns raw [`Samples`]
//! without printing — the `perfsuite` binary uses it to build machine
//! readable `BENCH_*.json` reports, while [`bench`] remains the printing
//! wrapper the figure/table binaries call.

use std::hint::black_box;
use std::time::Instant;

/// Per-iteration wall-clock samples from one measurement, held sorted
/// ascending so order statistics are O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Samples {
    ns: Vec<u128>,
}

impl Samples {
    /// Wraps raw nanosecond samples, sorting them ascending.
    pub fn from_nanos(mut ns: Vec<u128>) -> Self {
        ns.sort_unstable();
        Samples { ns }
    }

    /// Number of timed iterations captured.
    pub fn len(&self) -> usize {
        self.ns.len()
    }

    /// True when no iterations were timed (`iters == 0`).
    pub fn is_empty(&self) -> bool {
        self.ns.is_empty()
    }

    /// The sorted samples, ascending.
    pub fn as_nanos(&self) -> &[u128] {
        &self.ns
    }

    /// Fastest iteration, or `None` when empty. The minimum is the
    /// lowest-noise estimator for short deterministic work.
    pub fn min_ns(&self) -> Option<u128> {
        self.ns.first().copied()
    }

    /// Median iteration (upper median for even sample counts), or `None`
    /// when empty. The median resists one-off scheduler hiccups.
    pub fn median_ns(&self) -> Option<u128> {
        self.ns.get(self.ns.len() / 2).copied()
    }

    /// Sum of all timed iterations.
    pub fn total_ns(&self) -> u128 {
        self.ns.iter().sum()
    }
}

/// Runs `f` `iters` times after `warmup` untimed runs and returns the raw
/// per-iteration [`Samples`] without printing anything. `iters == 0` yields
/// an empty sample set. The closure's return value is [`black_box`]ed so
/// the work is not optimised away.
pub fn measure<T>(warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> Samples {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut ns: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        ns.push(start.elapsed().as_nanos());
    }
    Samples::from_nanos(ns)
}

/// Runs `f` through [`measure`] and reports the median iteration time;
/// `elements` is the per-iteration work unit count used for the throughput
/// column. Results print as one aligned line per benchmark.
pub fn bench<T>(name: &str, elements: u64, warmup: u32, iters: u32, f: impl FnMut() -> T) {
    assert!(iters > 0, "need at least one timed iteration");
    let samples = measure(warmup, iters, f);
    let median = samples.median_ns().expect("iters > 0 guarantees a sample");
    let per_elem = median as f64 / elements as f64;
    let throughput = if median > 0 {
        elements as f64 * 1e9 / median as f64
    } else {
        f64::NAN
    };
    println!(
        "{name:<44} {:>10.3} ms/iter {per_elem:>9.1} ns/elem {:>12.0} elem/s",
        median as f64 / 1e6,
        throughput
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_expected_times() {
        let mut calls = 0u32;
        bench("noop", 1, 2, 3, || calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn measure_runs_warmup_plus_iters_and_counts_samples() {
        let mut calls = 0u32;
        let samples = measure(3, 4, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(samples.len(), 4);
        assert!(!samples.is_empty());
    }

    #[test]
    fn measured_samples_are_sorted_and_clock_is_monotonic() {
        // Instant is monotonic, so every sample of real work must come out
        // non-negative (here: strictly positive) and the stored order
        // ascending regardless of the order the iterations ran in.
        let samples = measure(0, 5, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(samples.len(), 5);
        assert!(samples.as_nanos().iter().all(|&ns| ns > 0));
        assert!(samples.as_nanos().windows(2).all(|w| w[0] <= w[1]));
        assert!(samples.total_ns() >= samples.median_ns().unwrap());
    }

    #[test]
    fn samples_select_min_and_upper_median() {
        let odd = Samples::from_nanos(vec![5, 1, 3]);
        assert_eq!(odd.min_ns(), Some(1));
        assert_eq!(odd.median_ns(), Some(3));
        let even = Samples::from_nanos(vec![4, 1]);
        assert_eq!(even.min_ns(), Some(1));
        assert_eq!(
            even.median_ns(),
            Some(4),
            "even counts take the upper median"
        );
    }

    #[test]
    fn zero_iterations_yield_empty_samples() {
        let mut calls = 0u32;
        let samples = measure(2, 0, || calls += 1);
        assert_eq!(calls, 2, "warmup still runs");
        assert!(samples.is_empty());
        assert_eq!(samples.len(), 0);
        assert_eq!(samples.min_ns(), None);
        assert_eq!(samples.median_ns(), None);
        assert_eq!(samples.total_ns(), 0);
    }
}
