//! Microbenchmarks of the simulator itself: memory-system tick throughput
//! per scheme, cache hierarchy access rate, workload generation rate and
//! end-to-end full-system throughput.
//!
//! Manual harness (no criterion -- the workspace builds offline); run with
//! `cargo bench -p bench --bench sim_throughput`.

use std::hint::black_box;

use bench::timing::bench;
use cache_sim::{CacheHierarchy, HierarchyConfig};
use cpu_sim::{InstructionSource, Op};
use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::{MemRequest, PhysAddr, WordMask};
use pra_core::{Scheme, SimBuilder};
use workloads::WorkloadGen;

/// Ticks a loaded memory system for a fixed number of cycles.
fn bench_memory_system() {
    for (name, scheme) in [
        ("baseline", SchemeBehavior::baseline()),
        ("pra", SchemeBehavior::pra()),
        ("half_dram", SchemeBehavior::half_dram()),
    ] {
        bench(
            &format!("memory_system_tick/mixed_load/{name}"),
            10_000,
            2,
            10,
            || {
                let cfg = DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, scheme);
                let mut mem = MemorySystem::new(cfg);
                let mut id = 0u64;
                for cycle in 0..10_000u64 {
                    if cycle % 7 == 0 {
                        id += 1;
                        let addr = PhysAddr::new((id * 8191 * 64) % (1 << 32));
                        let req = if id.is_multiple_of(3) {
                            MemRequest::write(id, addr, WordMask::single((id % 8) as u8))
                        } else {
                            MemRequest::read(id, addr)
                        };
                        let _ = mem.try_enqueue(req);
                    }
                    black_box(mem.tick().len());
                }
                mem.stats().activations
            },
        );
    }
}

/// Streams accesses through the two-level hierarchy.
fn bench_cache_hierarchy() {
    bench("cache_hierarchy/gups_accesses", 100_000, 2, 10, || {
        let mut h = CacheHierarchy::new(HierarchyConfig::paper(1));
        let mut g = WorkloadGen::new(workloads::gups(), 1, 0);
        let mut done = 0u64;
        let mut wbs = 0usize;
        while done < 100_000 {
            match g.next_op() {
                Op::Compute(_) => {}
                Op::Load(a) => {
                    wbs += h.access(0, a, None).writebacks.len();
                    done += 1;
                }
                Op::Store(a, m) => {
                    wbs += h.access(0, a, Some(m)).writebacks.len();
                    done += 1;
                }
            }
        }
        wbs
    });
}

/// Raw op-generation rate of the workload generators.
fn bench_workload_generation() {
    for profile in [workloads::gups(), workloads::libquantum()] {
        bench(
            &format!("workload_generation/ops/{}", profile.name),
            100_000,
            2,
            10,
            || {
                let mut g = WorkloadGen::new(profile, 1, 0);
                let mut acc = 0u64;
                for _ in 0..100_000 {
                    if let Op::Load(a) | Op::Store(a, _) = g.next_op() {
                        acc ^= a.raw();
                    }
                }
                acc
            },
        );
    }
}

/// End-to-end instruction throughput of the full system (cores + caches +
/// DRAM + power model).
fn bench_full_system() {
    for scheme in [Scheme::Baseline, Scheme::Pra] {
        bench(
            &format!("full_system/gups_20k_insts/{scheme:?}"),
            20_000,
            1,
            10,
            || {
                let report = SimBuilder::new()
                    .app(workloads::gups())
                    .scheme(scheme)
                    .instructions(20_000)
                    .warmup_mem_ops(50_000)
                    .run();
                report.energy.total()
            },
        );
    }
}

fn main() {
    bench_memory_system();
    bench_cache_hierarchy();
    bench_workload_generation();
    bench_full_system();
}
