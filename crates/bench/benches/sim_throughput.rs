//! Criterion microbenchmarks of the simulator itself: memory-system tick
//! throughput per scheme, cache hierarchy access rate, and workload
//! generation rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cache_sim::{CacheHierarchy, HierarchyConfig};
use cpu_sim::{InstructionSource, Op};
use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::{MemRequest, PhysAddr, WordMask};
use pra_core::{Scheme, SimBuilder};
use workloads::WorkloadGen;

/// Ticks a loaded memory system for a fixed number of cycles.
fn bench_memory_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_system_tick");
    for (name, scheme) in [
        ("baseline", SchemeBehavior::baseline()),
        ("pra", SchemeBehavior::pra()),
        ("half_dram", SchemeBehavior::half_dram()),
    ] {
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::new("mixed_load", name), &scheme, |b, scheme| {
            b.iter(|| {
                let cfg = DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, *scheme);
                let mut mem = MemorySystem::new(cfg);
                let mut id = 0u64;
                for cycle in 0..10_000u64 {
                    if cycle % 7 == 0 {
                        id += 1;
                        let addr = PhysAddr::new((id * 8191 * 64) % (1 << 32));
                        let req = if id.is_multiple_of(3) {
                            MemRequest::write(id, addr, WordMask::single((id % 8) as u8))
                        } else {
                            MemRequest::read(id, addr)
                        };
                        let _ = mem.try_enqueue(req);
                    }
                    black_box(mem.tick().len());
                }
                black_box(mem.stats().activations)
            });
        });
    }
    group.finish();
}

/// Streams accesses through the two-level hierarchy.
fn bench_cache_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("gups_accesses", |b| {
        b.iter(|| {
            let mut h = CacheHierarchy::new(HierarchyConfig::paper(1));
            let mut g = WorkloadGen::new(workloads::gups(), 1, 0);
            let mut done = 0u64;
            let mut wbs = 0usize;
            while done < 100_000 {
                match g.next_op() {
                    Op::Compute(_) => {}
                    Op::Load(a) => {
                        wbs += h.access(0, a, None).writebacks.len();
                        done += 1;
                    }
                    Op::Store(a, m) => {
                        wbs += h.access(0, a, Some(m)).writebacks.len();
                        done += 1;
                    }
                }
            }
            black_box(wbs)
        });
    });
    group.finish();
}

/// Raw op-generation rate of the workload generators.
fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(100_000));
    for profile in [workloads::gups(), workloads::libquantum()] {
        group.bench_with_input(
            BenchmarkId::new("ops", profile.name),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let mut g = WorkloadGen::new(*profile, 1, 0);
                    let mut acc = 0u64;
                    for _ in 0..100_000 {
                        if let Op::Load(a) | Op::Store(a, _) = g.next_op() {
                            acc ^= a.raw();
                        }
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

/// End-to-end instruction throughput of the full system (cores + caches +
/// DRAM + power model).
fn bench_full_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_system");
    group.throughput(Throughput::Elements(20_000));
    for scheme in [Scheme::Baseline, Scheme::Pra] {
        group.bench_with_input(
            BenchmarkId::new("gups_20k_insts", format!("{scheme:?}")),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let report = SimBuilder::new()
                        .app(workloads::gups())
                        .scheme(scheme)
                        .instructions(20_000)
                        .warmup_mem_ops(50_000)
                        .run();
                    black_box(report.energy.total())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_memory_system, bench_cache_hierarchy, bench_workload_generation, bench_full_system
}
criterion_main!(benches);
