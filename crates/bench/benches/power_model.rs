//! Criterion microbenchmarks of the power and energy models: per-event
//! accounting cost and the analytic activation-energy model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dram_power::{ActivationEnergyModel, EnergyAccounting, PowerParams, RankPowerState};

fn bench_energy_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_accounting");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("mixed_events", |b| {
        b.iter(|| {
            let mut acc = EnergyAccounting::new(PowerParams::paper_table3(), 4);
            for i in 0..100_000u64 {
                match i % 5 {
                    0 => acc.activation(((i % 8) + 1) as u32),
                    1 => acc.read_line(),
                    2 => acc.write_line(((i % 8) as f64 + 1.0) / 8.0),
                    3 => acc.background_cycle(0, RankPowerState::ActiveStandby),
                    _ => acc.background_cycle(1, RankPowerState::PowerDown),
                }
            }
            black_box(acc.breakdown().total())
        });
    });
    group.finish();
}

fn bench_activation_energy_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("activation_energy_model");
    group.throughput(Throughput::Elements(16));
    group.bench_function("figure9_series", |b| {
        let model = ActivationEnergyModel::paper_table2();
        b.iter(|| black_box(model.figure9_series()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_energy_accounting, bench_activation_energy_model
}
criterion_main!(benches);
