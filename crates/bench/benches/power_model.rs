//! Microbenchmarks of the power and energy models: per-event accounting
//! cost and the analytic activation-energy model.
//!
//! Manual harness (no criterion -- the workspace builds offline); run with
//! `cargo bench -p bench --bench power_model`.

use bench::timing::bench;
use dram_power::{ActivationEnergyModel, EnergyAccounting, PowerParams, RankPowerState};

fn bench_energy_accounting() {
    bench("energy_accounting/mixed_events", 100_000, 2, 20, || {
        let mut acc = EnergyAccounting::new(PowerParams::paper_table3(), 4);
        for i in 0..100_000u64 {
            match i % 5 {
                0 => acc.activation(((i % 8) + 1) as u32),
                1 => acc.read_line(),
                2 => acc.write_line(((i % 8) as f64 + 1.0) / 8.0),
                3 => acc.background_cycle(0, RankPowerState::ActiveStandby),
                _ => acc.background_cycle(1, RankPowerState::PowerDown),
            }
        }
        acc.breakdown().total()
    });
}

fn bench_activation_energy_model() {
    let model = ActivationEnergyModel::paper_table2();
    bench("activation_energy_model/figure9_series", 16, 5, 20, || {
        model.figure9_series()
    });
}

fn main() {
    bench_energy_accounting();
    bench_activation_energy_model();
}
