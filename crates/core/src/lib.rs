//! Partial Row Activation (PRA): the primary contribution of *Partial Row
//! Activation for Low-Power DRAM System* (HPCA 2017), reproduced in Rust.
//!
//! PRA attacks DRAM's *row overfetching* problem asymmetrically: memory
//! **reads** keep activating full rows (preserving the n-bit prefetch and
//! full bandwidth), while memory **writes** activate only the MAT groups
//! holding the cache line's *dirty* words — from one-eighth of a row up to
//! a full row — and transfer only those words on the bus. The paper reports
//! 34% average row-activation power saving, 45% write-I/O power saving and
//! 23% average total DRAM power saving at a 0.8% average performance cost.
//!
//! This crate ties the workspace together:
//!
//! * [`PraChip`]/[`PraLatch`]/[`ControllerPraState`] — the chip- and
//!   controller-side hardware mechanism (Section 4.1/4.2), including the
//!   ECC-strapped-chip mode.
//! * [`Scheme`] — the evaluated schemes (baseline, FGA, Half-DRAM, PRA) and
//!   the case-study combinations (Half-DRAM+PRA, DBI, DBI+PRA).
//! * [`SimBuilder`]/[`Report`] — one-call full-system simulation: cores,
//!   FGD cache hierarchy, cycle-level DDR3 and the power model.
//! * [`experiments`] — one function per table/figure of the evaluation.
//!
//! # Quickstart
//!
//! ```
//! use pra_core::{Scheme, SimBuilder};
//!
//! let baseline = SimBuilder::new()
//!     .app(workloads::gups())
//!     .scheme(Scheme::Baseline)
//!     .instructions(20_000)
//!     .run();
//! let pra = SimBuilder::new()
//!     .app(workloads::gups())
//!     .scheme(Scheme::Pra)
//!     .instructions(20_000)
//!     .run();
//! assert!(pra.power.total() < baseline.power.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod experiments;
mod pra;
mod report;
mod scheme;
pub mod sds;
mod system;
pub mod timing_diagram;

pub use dram_sim::{RecoveryConfig, RecoveryCounts};
pub use error::SimError;
pub use pra::{
    ChipActivation, ControllerPraState, GuardedActivation, MaskFault, MaskTransfer, PraChip,
    PraLatch, PraPin,
};
pub use report::Report;
pub use scheme::Scheme;
pub use system::{DramGeneration, SimBuilder, SnapOutcome};
