//! Typed errors for the simulation-building and experiment paths.

use core::fmt;
use std::path::PathBuf;

/// An error building or running a full-system simulation. Replaces the
/// panic paths on config/CLI/experiment inputs: callers get an actionable
/// message and a nonzero exit instead of an unwind.
#[derive(Debug)]
pub enum SimError {
    /// [`SimBuilder`](crate::SimBuilder) has no application to run.
    NoApplications,
    /// The DRAM configuration is inconsistent.
    Config(dram_sim::ConfigError),
    /// The fault plan is inconsistent.
    FaultPlan(sim_fault::PlanError),
    /// An output file (trace or metrics) could not be created.
    Io {
        /// Path that failed to open.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// Two identically-configured runs produced different state digests
    /// (`pra run --verify-determinism`).
    Nondeterministic {
        /// Digest of the first run.
        first: u64,
        /// Digest of the second run.
        second: u64,
    },
    /// The protocol checker rejected a command mid-run — always a simulator
    /// bug, never a workload property.
    Protocol(dram_sim::ProtocolError),
    /// A liveness watchdog tripped: the memory system stopped retiring
    /// requests, or starved one queued request past its bound. Carries the
    /// victim's address/bank trail.
    Liveness(dram_sim::LivenessError),
    /// A checkpoint could not be restored: the file is missing, torn,
    /// corrupt, from another schema version, or from a run with a
    /// different configuration.
    Snapshot {
        /// Snapshot file that failed to restore.
        path: PathBuf,
        /// Underlying snapshot error.
        source: sim_snap::SnapError,
    },
    /// Checkpointing was half-configured (an interval without a directory,
    /// or a directory without an interval).
    CheckpointConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoApplications => {
                write!(f, "add at least one application before running")
            }
            SimError::Config(e) => write!(f, "invalid DRAM configuration: {e}"),
            SimError::FaultPlan(e) => write!(f, "{e}"),
            SimError::Io { path, source } => {
                write!(f, "cannot create {}: {source}", path.display())
            }
            SimError::Nondeterministic { first, second } => write!(
                f,
                "nondeterminism detected: run digests {first:016x} and {second:016x} differ"
            ),
            SimError::Protocol(e) => write!(f, "protocol violation: {e}"),
            SimError::Liveness(e) => write!(f, "liveness violation: {e}"),
            SimError::Snapshot { path, source } => {
                write!(f, "cannot restore {}: {source}", path.display())
            }
            SimError::CheckpointConfig(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::FaultPlan(e) => Some(e),
            SimError::Io { source, .. } => Some(source),
            SimError::Protocol(e) => Some(e),
            SimError::Liveness(e) => Some(e),
            SimError::Snapshot { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<dram_sim::ConfigError> for SimError {
    fn from(e: dram_sim::ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<sim_fault::PlanError> for SimError {
    fn from(e: sim_fault::PlanError) -> Self {
        SimError::FaultPlan(e)
    }
}

impl From<dram_sim::TickError> for SimError {
    fn from(e: dram_sim::TickError) -> Self {
        match e {
            dram_sim::TickError::Protocol(p) => SimError::Protocol(p),
            dram_sim::TickError::Liveness(l) => SimError::Liveness(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        assert_eq!(
            SimError::NoApplications.to_string(),
            "add at least one application before running"
        );
        let nd = SimError::Nondeterministic {
            first: 0xdead,
            second: 0xbeef,
        };
        assert!(nd.to_string().contains("000000000000dead"), "{nd}");
        let io = SimError::Io {
            path: PathBuf::from("/no/such/dir/out.jsonl"),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "nope"),
        };
        assert!(io.to_string().contains("/no/such/dir/out.jsonl"), "{io}");
    }
}
