//! Reproduction of the paper's **Figure 7**: the command/cycle timing of a
//! partial row activation versus a conventional full activation.
//!
//! The diagram is derived analytically from [`TimingParams`] so it can be
//! cross-checked against what the cycle-level simulator actually does (the
//! `timing_edges` integration tests assert the same cycle counts).

use dram_sim::TimingParams;

/// One labelled event on the command/data timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingEvent {
    /// Cycle relative to the activation command.
    pub cycle: u64,
    /// Bus the event occupies.
    pub bus: Bus,
    /// Label (e.g. `ACT`, `PRA mask`, `WR`, `data x8`, `PRE`).
    pub label: String,
}

/// Which bus an event appears on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bus {
    /// Command/address bus.
    Command,
    /// Data bus (DQ).
    Data,
}

/// The Figure 7 timeline for a write, either partial (7a) or full (7b).
pub fn write_timeline(t: &TimingParams, partial: bool) -> Vec<TimingEvent> {
    let mut events = Vec::new();
    let mut push = |cycle: u64, bus: Bus, label: &str| {
        events.push(TimingEvent {
            cycle,
            bus,
            label: label.to_string(),
        });
    };
    push(
        0,
        Bus::Command,
        if partial {
            "ACT (PRA# low)"
        } else {
            "ACT (PRA# high)"
        },
    );
    let extra = if partial {
        push(1, Bus::Command, "PRA mask on address bus");
        1
    } else {
        0
    };
    let write_at = t.trcd + extra;
    push(write_at, Bus::Command, "WR");
    let burst_start = write_at + t.wl;
    for beat in 0..t.burst_cycles {
        push(burst_start + beat, Bus::Data, "data");
    }
    let burst_end = burst_start.saturating_add(t.burst_cycles);
    let pre_at = (burst_end + t.twr).max(t.tras);
    push(pre_at, Bus::Command, "PRE");
    events
}

/// The Figure 7(b)-style timeline for a read (always a full activation).
pub fn read_timeline(t: &TimingParams) -> Vec<TimingEvent> {
    let mut events = Vec::new();
    let mut push = |cycle: u64, bus: Bus, label: &str| {
        events.push(TimingEvent {
            cycle,
            bus,
            label: label.to_string(),
        });
    };
    push(0, Bus::Command, "ACT (PRA# high)");
    push(t.trcd, Bus::Command, "RD");
    let burst_start = t.trcd + t.tcas;
    for beat in 0..t.burst_cycles {
        push(burst_start + beat, Bus::Data, "data");
    }
    events
}

/// Renders a timeline as an ASCII diagram (one row per bus).
pub fn render(events: &[TimingEvent]) -> String {
    let last = events.iter().map(|e| e.cycle).max().unwrap_or(0);
    let width = (last + 1) as usize;
    let mut cmd = vec!['.'; width];
    let mut data = vec!['.'; width];
    let mut labels = Vec::new();
    for event in events {
        let row = match event.bus {
            Bus::Command => &mut cmd,
            Bus::Data => &mut data,
        };
        let marker = event.label.chars().next().unwrap_or('?');
        row[event.cycle as usize] = if event.label == "data" { '#' } else { marker };
        if event.label != "data" {
            labels.push(format!("  cycle {:>3}: {}", event.cycle, event.label));
        }
    }
    let mut out = String::new();
    out.push_str("CMD  ");
    out.extend(cmd);
    out.push('\n');
    out.push_str("DQ   ");
    out.extend(data);
    out.push('\n');
    for label in labels {
        out.push_str(&label);
        out.push('\n');
    }
    out
}

/// Cycle of the first `label` event. `write_timeline` emits WR, data and
/// PRE events unconditionally, so a miss here is a construction bug.
fn cycle_of(timeline: &[TimingEvent], label: &str) -> u64 {
    timeline
        .iter()
        .find(|e| e.label == label)
        // sim-lint: allow(no-panic-hot-path): write_timeline emits every label this is called with; absence is a construction bug worth aborting on
        .unwrap_or_else(|| panic!("timeline is missing a {label} event"))
        .cycle
}

/// Key latencies of the Figure 7 cases, for tests and the bin's summary:
/// `(write_cmd_at, data_start, precharge_at)`.
pub fn write_latencies(t: &TimingParams, partial: bool) -> (u64, u64, u64) {
    let timeline = write_timeline(t, partial);
    (
        cycle_of(&timeline, "WR"),
        cycle_of(&timeline, "data"),
        cycle_of(&timeline, "PRE"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_table3()
    }

    #[test]
    fn partial_write_is_delayed_by_one_cycle() {
        // Fig. 7(a): column command at tRCD + tCK, not tRCD.
        let (wr_partial, data_partial, _) = write_latencies(&t(), true);
        let (wr_full, data_full, _) = write_latencies(&t(), false);
        assert_eq!(wr_partial, t().trcd + 1);
        assert_eq!(wr_full, t().trcd);
        assert_eq!(data_partial, wr_partial + t().wl);
        assert_eq!(data_full, wr_full + t().wl);
    }

    #[test]
    fn precharge_respects_twr_and_tras() {
        let (_, data, pre) = write_latencies(&t(), true);
        let burst_end = data + t().burst_cycles;
        assert_eq!(pre, (burst_end + t().twr).max(t().tras));
        assert!(pre >= t().tras, "tRAS lower-bounds the precharge");
    }

    #[test]
    fn read_timeline_matches_simulator_latency() {
        // The simulator's lone-read completion (tRCD + CL + burst, asserted
        // in dram-sim's tests as cycle 26) equals this timeline's data end.
        let timeline = read_timeline(&t());
        let data_end = timeline
            .iter()
            .filter(|e| e.label == "data")
            .map(|e| e.cycle)
            .max();
        assert_eq!(data_end, Some(t().trcd + t().tcas + t().burst_cycles - 1));
    }

    #[test]
    fn mask_event_only_on_partial() {
        let partial = write_timeline(&t(), true);
        let full = write_timeline(&t(), false);
        assert!(partial.iter().any(|e| e.label.contains("mask")));
        assert!(!full.iter().any(|e| e.label.contains("mask")));
    }

    #[test]
    fn render_produces_two_rows() {
        let text = render(&write_timeline(&t(), true));
        assert!(text.starts_with("CMD  "));
        assert!(text.contains("\nDQ   "));
        assert!(text.contains("PRA mask"));
        assert!(text.contains('#'), "data beats are drawn");
    }
}
