//! An analytical model of the Skinflint DRAM System (SDS), the paper's
//! closest related work, used to reproduce Section 3's coverage comparison:
//! *"our scheme reduces average row activation granularity by 42% whereas
//! SDS can reduce average chip access granularity by only 16%"*.
//!
//! SDS is **inter-chip**: on a write it skips any chip whose bytes are all
//! clean. The paper's data mapping scatters byte `b` of every word to chip
//! `b`, so chip `b` can be skipped only if byte `b` of *all eight words* is
//! clean. PRA is **intra-chip**: it skips MAT-pair groups, i.e. whole clean
//! *words*. The structural consequence this module quantifies: one dirty
//! 8-byte word already touches every byte position — every chip — so SDS
//! saves nothing on it, while PRA still skips the seven clean words'
//! groups. SDS only wins bytes when stores write *sub-word* values.
//!
//! The model extends the workspace's word-granularity dirty masks with a
//! per-store value-width distribution (how many low bytes of each dirty
//! word the store actually writes), which is exactly the information SDS's
//! old/new data comparison would recover.

use mem_model::rng::Rng;
use mem_model::{WordMask, WORDS_PER_LINE};

/// Distribution of written-value widths within a dirty word, in bytes.
/// Probabilities for widths `[1, 2, 4, 8]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueWidthDist {
    /// `p[i]` is the probability of width `[1, 2, 4, 8][i]`.
    pub p: [f64; 4],
}

impl ValueWidthDist {
    /// A pointer/double-heavy mix typical of the paper's benchmarks:
    /// half the stores write full 8-byte words (pointers, doubles,
    /// memcpy-style lines), a third write 4-byte ints, the rest smaller.
    pub const fn typical() -> Self {
        ValueWidthDist {
            p: [0.05, 0.12, 0.33, 0.50],
        }
    }

    /// Checks the distribution sums to one.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are invalid.
    pub fn assert_valid(&self) {
        let sum: f64 = self.p.iter().sum();
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — distribution validation before a Monte-Carlo run, not per-cycle
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "value width distribution sums to {sum}"
        );
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — distribution validation before a Monte-Carlo run, not per-cycle
        assert!(self.p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let widths = [1usize, 2, 4, 8];
        let mut x: f64 = rng.random_f64();
        for (w, &p) in widths.iter().zip(&self.p) {
            if x < p {
                return *w;
            }
            x -= p;
        }
        8
    }
}

impl Default for ValueWidthDist {
    fn default() -> Self {
        ValueWidthDist::typical()
    }
}

/// Byte-granularity dirtiness of one cache line: bit `8*w + b` covers byte
/// `b` of word `w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteMask(pub u64);

impl ByteMask {
    /// Bytes dirty in the given word.
    pub fn word_bytes(&self, word: u8) -> u8 {
        ((self.0 >> (8 * word)) & 0xFF) as u8
    }

    /// Chips (byte positions) that hold at least one dirty byte — the chips
    /// SDS must access.
    pub fn chips_accessed(&self) -> u32 {
        let mut positions = 0u8;
        for w in 0..WORDS_PER_LINE as u8 {
            positions |= self.word_bytes(w);
        }
        positions.count_ones()
    }

    /// Words with at least one dirty byte — the MAT groups PRA activates.
    pub fn words_dirty(&self) -> u32 {
        (0..WORDS_PER_LINE as u8)
            .filter(|&w| self.word_bytes(w) != 0)
            .count() as u32
    }

    /// The word-granularity FGD mask this byte mask collapses to.
    pub fn to_word_mask(&self) -> WordMask {
        WordMask::from_words((0..WORDS_PER_LINE as u8).filter(|&w| self.word_bytes(w) != 0))
    }
}

/// Outcome of the SDS-versus-PRA coverage comparison (Section 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageComparison {
    /// Average fraction of a row PRA activates on writes (1.0 = full).
    pub pra_write_granularity: f64,
    /// Average fraction of chips SDS accesses on writes (1.0 = all 8).
    pub sds_chip_fraction: f64,
    /// PRA's average write-granularity reduction (write accesses only).
    pub pra_reduction: f64,
    /// SDS's average chip-access reduction (write accesses only).
    pub sds_reduction: f64,
}

impl CoverageComparison {
    /// The paper's Section 3 metrics average over *all* accesses — reads
    /// use full rows and all chips in both schemes, diluting the write-side
    /// savings. Given the share of row activations caused by writes
    /// (Table 1: 42 %) and the share of traffic that is writes (36 %),
    /// returns `(pra_overall_reduction, sds_overall_reduction)` — the
    /// quantities the paper quotes as 42 % and 16 %.
    pub fn overall_reductions(
        &self,
        write_activation_share: f64,
        write_traffic_share: f64,
    ) -> (f64, f64) {
        (
            write_activation_share * self.pra_reduction,
            write_traffic_share * self.sds_reduction,
        )
    }
}

/// Synthesises `samples` written-back lines whose dirty words follow
/// `dirty_words_dist` (the Figure 3 knob) and whose per-word written widths
/// follow `widths`, then measures what each scheme can skip.
///
/// # Panics
///
/// Panics if either distribution is invalid or `samples == 0`.
pub fn compare_coverage(
    dirty_words_dist: [f64; WORDS_PER_LINE],
    widths: ValueWidthDist,
    samples: u64,
    seed: u64,
) -> CoverageComparison {
    // sim-lint: allow(no-panic-hot-path): argument validation at the head of a Monte-Carlo experiment, runs once
    assert!(samples > 0, "need at least one sample");
    widths.assert_valid();
    let sum: f64 = dirty_words_dist.iter().sum();
    // sim-lint: allow(no-panic-hot-path): argument validation at the head of a Monte-Carlo experiment, runs once
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "dirty-word distribution sums to {sum}"
    );

    let mut rng = Rng::seed_from_u64(seed);
    let mut pra_words = 0u64;
    let mut sds_chips = 0u64;
    for _ in 0..samples {
        // Draw the number of dirty words, then a contiguous run position.
        let mut x: f64 = rng.random_f64();
        let mut words = WORDS_PER_LINE;
        for (k, &p) in dirty_words_dist.iter().enumerate() {
            if x < p {
                words = k + 1;
                break;
            }
            x -= p;
        }
        let start = rng.random_range(0..(WORDS_PER_LINE - words + 1)) as u8;
        let mut mask = ByteMask::default();
        for w in start..start + words as u8 {
            let width = widths.sample(&mut rng);
            // The value occupies the low `width` bytes of the word (aligned
            // stores), except full-line writes which dirty whole words.
            let bytes: u8 = if width >= 8 {
                0xFF
            } else {
                ((1u16 << width) - 1) as u8
            };
            mask.0 |= u64::from(bytes) << (8 * w);
        }
        pra_words += u64::from(mask.words_dirty());
        sds_chips += u64::from(mask.chips_accessed());
    }
    let pra_write_granularity = pra_words as f64 / (samples * WORDS_PER_LINE as u64) as f64;
    let sds_chip_fraction = sds_chips as f64 / (samples * 8) as f64;
    CoverageComparison {
        pra_write_granularity,
        sds_chip_fraction,
        pra_reduction: 1.0 - pra_write_granularity,
        sds_reduction: 1.0 - sds_chip_fraction,
    }
}

/// Runs the comparison with the workload suite's average dirty-word
/// distribution and the typical value-width mix — the configuration that
/// reproduces the paper's 42%-vs-16% claim.
pub fn paper_comparison(samples: u64, seed: u64) -> CoverageComparison {
    // Average the suite's calibrated per-benchmark distributions.
    let mut avg = [0.0; WORDS_PER_LINE];
    let suite = workloads::all_benchmarks();
    for b in &suite {
        for (a, d) in avg.iter_mut().zip(&b.dirty_words_dist) {
            *a += d / suite.len() as f64;
        }
    }
    // Normalise residual floating error.
    let sum: f64 = avg.iter().sum();
    for a in &mut avg {
        *a /= sum;
    }
    compare_coverage(avg, ValueWidthDist::typical(), samples, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_mask_accessors() {
        let mut m = ByteMask::default();
        m.0 |= 0x0F; // low 4 bytes of word 0
        m.0 |= 0xFF << 56; // all of word 7
        assert_eq!(m.word_bytes(0), 0x0F);
        assert_eq!(m.word_bytes(7), 0xFF);
        assert_eq!(m.words_dirty(), 2);
        assert_eq!(m.chips_accessed(), 8, "word 7 touches every byte position");
        assert_eq!(m.to_word_mask(), WordMask::from_words([0, 7]));
    }

    #[test]
    fn one_full_word_defeats_sds_but_not_pra() {
        // A single fully-written word: SDS must access all chips, PRA
        // activates one group of sixteen MATs' worth (1/8 of a row).
        let dist = {
            let mut d = [0.0; 8];
            d[0] = 1.0;
            d
        };
        let all_eight_bytes = ValueWidthDist {
            p: [0.0, 0.0, 0.0, 1.0],
        };
        let c = compare_coverage(dist, all_eight_bytes, 10_000, 1);
        assert!((c.pra_write_granularity - 0.125).abs() < 1e-9);
        assert!((c.sds_chip_fraction - 1.0).abs() < 1e-9);
        assert!(
            c.sds_reduction.abs() < 1e-9,
            "SDS saves nothing on whole-word writes"
        );
        assert!((c.pra_reduction - 0.875).abs() < 1e-9);
    }

    #[test]
    fn narrow_values_let_sds_skip_chips() {
        let dist = {
            let mut d = [0.0; 8];
            d[0] = 1.0;
            d
        };
        let all_ints = ValueWidthDist {
            p: [0.0, 0.0, 1.0, 0.0],
        };
        let c = compare_coverage(dist, all_ints, 10_000, 1);
        assert!(
            (c.sds_chip_fraction - 0.5).abs() < 1e-9,
            "4-byte values touch half the chips"
        );
    }

    #[test]
    fn paper_comparison_shape() {
        let c = paper_comparison(50_000, 1);
        // Write-side: PRA must dominate SDS by a wide margin.
        assert!(
            c.pra_reduction > 2.0 * c.sds_reduction,
            "PRA {:.3} vs SDS {:.3}",
            c.pra_reduction,
            c.sds_reduction
        );
        assert!(c.sds_reduction > 0.02);
        assert!(c.pra_reduction > 0.4 && c.pra_reduction < 0.95);
        // Overall (read-diluted), the paper's Table 1 shares give numbers in
        // the neighbourhood of its 42% / 16% claim.
        let (pra, sds) = c.overall_reductions(0.42, 0.36);
        assert!(
            (0.25..=0.45).contains(&pra),
            "overall PRA reduction {pra:.3}"
        );
        assert!(
            (0.03..=0.20).contains(&sds),
            "overall SDS reduction {sds:.3}"
        );
    }

    #[test]
    fn comparison_is_deterministic() {
        let a = paper_comparison(10_000, 7);
        let b = paper_comparison(10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = paper_comparison(0, 1);
    }
}
