//! Chip-level model of the Partial Row Activation hardware (paper
//! Section 4.1): the PRA command pin, per-bank PRA latches, MAT-group
//! selection through wordline gates, and the ECC-chip mode.
//!
//! The cycle-level scheduler in `dram-sim` models PRA *behaviourally*; this
//! module models the *mechanism* — what the added hardware in each chip
//! does on each activation — and is used by tests, examples and
//! documentation to check that the behavioural model and the hardware
//! description agree.

use mem_model::{WordMask, WORDS_PER_LINE};

/// The PRA# command pin level accompanying a row-activation command
/// (active-low: pulled down selects partial activation, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PraPin {
    /// PRA# pulled down: the chip defers activation one cycle and latches a
    /// PRA mask from the address bus.
    PartialActivation,
    /// PRA# pulled up: a conventional full-row activation.
    FullActivation,
}

/// One bank's PRA latch: holds the 8-bit mask delivered over the address
/// bus in the cycle after the ACT command (Section 4.1.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PraLatch {
    mask: Option<WordMask>,
}

impl PraLatch {
    /// An empty latch.
    pub const fn new() -> Self {
        PraLatch { mask: None }
    }

    /// Latches a mask delivered on the address bus.
    pub fn load(&mut self, mask: WordMask) {
        self.mask = Some(mask);
    }

    /// The held mask, if any.
    pub fn mask(&self) -> Option<WordMask> {
        self.mask
    }

    /// Clears the latch (bank precharge).
    pub fn clear(&mut self) {
        self.mask = None;
    }
}

/// Result of a row activation inside one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipActivation {
    /// Which of the 8 MAT groups drive their local wordlines.
    pub selected_groups: WordMask,
    /// MATs activated in this chip's addressed sub-array (2 per group).
    pub mats: u32,
    /// Extra command cycles before the column command may issue (the mask
    /// transfer of Fig. 7a costs one cycle for partial activations).
    pub extra_cycles: u64,
}

/// The PRA-visible state of one DRAM chip: eight banks' PRA latches plus
/// the ECC-chip strapping option of Section 4.2 (a chip whose PRA# pin is
/// tied to VDD ignores masks and always activates full rows, so x72 ECC
/// DIMMs work unchanged).
#[derive(Debug, Clone)]
pub struct PraChip {
    latches: Vec<PraLatch>,
    ecc_strapped: bool,
}

impl PraChip {
    /// A chip with `banks` banks participating in PRA.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "a chip needs at least one bank");
        PraChip {
            latches: vec![PraLatch::new(); banks],
            ecc_strapped: false,
        }
    }

    /// A chip whose PRA# pin is strapped high (the ECC chip of an x72
    /// DIMM): every activation is a full-row activation and masks on the
    /// address bus are ignored.
    pub fn new_ecc_strapped(banks: usize) -> Self {
        PraChip {
            ecc_strapped: true,
            ..Self::new(banks)
        }
    }

    /// Whether this chip ignores PRA commands.
    pub fn is_ecc_strapped(&self) -> bool {
        self.ecc_strapped
    }

    /// Performs a row activation on `bank`.
    ///
    /// For [`PraPin::PartialActivation`] the mask (delivered over the
    /// address bus one cycle after ACT) selects MAT groups through the
    /// wordline gates; an ECC-strapped chip treats any activation as full.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range, or if a partial activation carries
    /// an empty mask (the memory controller never issues one).
    pub fn activate(&mut self, bank: usize, pin: PraPin, mask: WordMask) -> ChipActivation {
        assert!(bank < self.latches.len(), "bank {bank} out of range");
        let effective = if self.ecc_strapped || pin == PraPin::FullActivation {
            WordMask::FULL
        } else {
            assert!(
                !mask.is_empty(),
                "partial activation requires a non-empty mask"
            );
            mask
        };
        self.latches[bank].load(effective);
        ChipActivation {
            selected_groups: effective,
            mats: effective.granularity_eighths() * 2,
            extra_cycles: if effective.is_full() { 0 } else { 1 },
        }
    }

    /// Bank precharge: clears the PRA latch.
    pub fn precharge(&mut self, bank: usize) {
        self.latches[bank].clear();
    }

    /// The mask currently held by a bank's latch.
    pub fn latched_mask(&self, bank: usize) -> Option<WordMask> {
        self.latches[bank].mask()
    }

    /// Whether a write burst's word `word` would reach sense amplifiers
    /// (data heading to unselected MATs is "don't care", Section 4.1.3).
    pub fn word_lands(&self, bank: usize, word: u8) -> bool {
        assert!((word as usize) < WORDS_PER_LINE);
        self.latches[bank].mask().is_some_and(|m| m.contains(word))
    }
}

/// The memory-controller side of Section 4.2's partial-row bookkeeping: an
/// 8-bit PRA mask per bank per rank (64 bits per rank in the baseline),
/// tracking which part of each opened row is activated.
#[derive(Debug, Clone)]
pub struct ControllerPraState {
    masks: Vec<Vec<Option<WordMask>>>,
}

impl ControllerPraState {
    /// State for `ranks` ranks of `banks` banks.
    pub fn new(ranks: usize, banks: usize) -> Self {
        ControllerPraState {
            masks: vec![vec![None; banks]; ranks],
        }
    }

    /// Records an activation's mask.
    pub fn on_activate(&mut self, rank: usize, bank: usize, mask: WordMask) {
        self.masks[rank][bank] = Some(mask);
    }

    /// Clears on precharge.
    pub fn on_precharge(&mut self, rank: usize, bank: usize) {
        self.masks[rank][bank] = None;
    }

    /// Whether a request needing `needed` words would be a *false row
    /// buffer hit* (row open, coverage insufficient — Section 5.2.1).
    pub fn is_false_hit(&self, rank: usize, bank: usize, needed: WordMask) -> bool {
        match self.masks[rank][bank] {
            Some(open) => !needed.is_subset_of(open),
            None => false,
        }
    }

    /// Storage cost in bits per rank: 8 bits per bank (the paper's "only 64
    /// bits per rank").
    pub fn bits_per_rank(&self) -> usize {
        self.masks.first().map_or(0, |banks| banks.len() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_activation_selects_groups() {
        let mut chip = PraChip::new(8);
        let mask = WordMask::from_words([0, 7]); // the paper's 10000001b
        let act = chip.activate(3, PraPin::PartialActivation, mask);
        assert_eq!(act.selected_groups, mask);
        assert_eq!(act.mats, 4, "two groups of two MATs");
        assert_eq!(act.extra_cycles, 1, "mask transfer costs a cycle");
        assert_eq!(chip.latched_mask(3), Some(mask));
        assert!(chip.word_lands(3, 0) && chip.word_lands(3, 7));
        assert!(
            !chip.word_lands(3, 1),
            "unselected MATs treat data as don't-care"
        );
    }

    #[test]
    fn full_pin_activates_everything() {
        let mut chip = PraChip::new(8);
        let act = chip.activate(0, PraPin::FullActivation, WordMask::single(0));
        assert_eq!(act.selected_groups, WordMask::FULL);
        assert_eq!(act.mats, 16);
        assert_eq!(act.extra_cycles, 0);
    }

    #[test]
    fn full_mask_partial_behaves_like_conventional() {
        // Fig. 7b: a full-mask PRA activation has conventional timing.
        let mut chip = PraChip::new(8);
        let act = chip.activate(0, PraPin::PartialActivation, WordMask::FULL);
        assert_eq!(act.extra_cycles, 0);
        assert_eq!(act.mats, 16);
    }

    #[test]
    fn ecc_strapped_chip_ignores_masks() {
        let mut chip = PraChip::new_ecc_strapped(8);
        assert!(chip.is_ecc_strapped());
        let act = chip.activate(1, PraPin::PartialActivation, WordMask::single(2));
        assert_eq!(act.selected_groups, WordMask::FULL, "ECC chip always full");
        assert_eq!(act.extra_cycles, 0);
        assert!(chip.word_lands(1, 5), "every word reaches the ECC chip");
    }

    #[test]
    fn precharge_clears_latch() {
        let mut chip = PraChip::new(8);
        chip.activate(2, PraPin::PartialActivation, WordMask::single(4));
        chip.precharge(2);
        assert_eq!(chip.latched_mask(2), None);
        assert!(!chip.word_lands(2, 4));
    }

    #[test]
    #[should_panic(expected = "non-empty mask")]
    fn empty_partial_mask_rejected() {
        PraChip::new(8).activate(0, PraPin::PartialActivation, WordMask::EMPTY);
    }

    #[test]
    fn controller_state_tracks_false_hits() {
        let mut st = ControllerPraState::new(2, 8);
        assert_eq!(st.bits_per_rank(), 64, "the paper's 64 bits per rank");
        st.on_activate(0, 3, WordMask::from_words([0, 1]));
        assert!(
            !st.is_false_hit(0, 3, WordMask::single(0)),
            "covered write hits"
        );
        assert!(
            st.is_false_hit(0, 3, WordMask::single(5)),
            "uncovered word is a false hit"
        );
        assert!(
            st.is_false_hit(0, 3, WordMask::FULL),
            "reads need full coverage"
        );
        st.on_precharge(0, 3);
        assert!(
            !st.is_false_hit(0, 3, WordMask::FULL),
            "closed bank cannot false-hit"
        );
    }
}
