//! Chip-level model of the Partial Row Activation hardware (paper
//! Section 4.1): the PRA command pin, per-bank PRA latches, MAT-group
//! selection through wordline gates, and the ECC-chip mode.
//!
//! The cycle-level scheduler in `dram-sim` models PRA *behaviourally*; this
//! module models the *mechanism* — what the added hardware in each chip
//! does on each activation — and is used by tests, examples and
//! documentation to check that the behavioural model and the hardware
//! description agree.

use core::fmt;

use mem_model::{WordMask, WORDS_PER_LINE};
use sim_fault::even_parity;

/// A PRA mask on the address bus: the eight mask bits plus the even-parity
/// bit the controller drives alongside them, so the chip can detect a
/// single-bit upset during the transfer cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskTransfer {
    bits: u8,
    parity: bool,
}

impl MaskTransfer {
    /// Encodes a mask for transfer, computing its even parity.
    pub fn encode(mask: WordMask) -> Self {
        MaskTransfer {
            bits: mask.bits(),
            parity: even_parity(mask),
        }
    }

    /// The transfer after a single-event upset on mask bit `bit` (the
    /// parity bit still describes the original mask).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a valid mask bit index.
    #[must_use]
    pub fn with_flipped_bit(self, bit: u8) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented # Panics argument contract for fault-injection callers
        assert!((bit as usize) < WORDS_PER_LINE, "bit {bit} out of range");
        MaskTransfer {
            bits: self.bits ^ (1 << bit),
            parity: self.parity,
        }
    }

    /// Chip-side decode: checks parity and rejects the all-zero mask (the
    /// controller never requests an activation that drives no MATs).
    ///
    /// # Errors
    ///
    /// Returns the [`MaskFault`] the chip detected. Note an *even* number
    /// of flips preserves parity and escapes detection — the documented
    /// limit of single-parity protection (see `even_parity_misses_double_flips`).
    pub fn decode(self) -> Result<WordMask, MaskFault> {
        let mask = WordMask::from_bits(self.bits);
        if even_parity(mask) != self.parity {
            return Err(MaskFault::Parity);
        }
        if mask.is_empty() {
            return Err(MaskFault::Empty);
        }
        Ok(mask)
    }
}

/// A fault the chip detected while decoding a PRA mask transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskFault {
    /// The received bits disagree with the parity bit (odd number of
    /// upsets in transit).
    Parity,
    /// The received mask selects no MAT group.
    Empty,
}

impl fmt::Display for MaskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskFault::Parity => write!(f, "mask transfer parity mismatch"),
            MaskFault::Empty => write!(f, "mask transfer selected no MAT group"),
        }
    }
}

/// A row activation together with the fault, if any, the chip detected and
/// degraded around. Returned by [`PraChip::activate_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardedActivation {
    /// The activation actually performed.
    pub activation: ChipActivation,
    /// The detected mask fault, when the activation is a full-row fallback.
    pub fault: Option<MaskFault>,
}

/// The PRA# command pin level accompanying a row-activation command
/// (active-low: pulled down selects partial activation, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PraPin {
    /// PRA# pulled down: the chip defers activation one cycle and latches a
    /// PRA mask from the address bus.
    PartialActivation,
    /// PRA# pulled up: a conventional full-row activation.
    FullActivation,
}

/// One bank's PRA latch: holds the 8-bit mask delivered over the address
/// bus in the cycle after the ACT command (Section 4.1.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PraLatch {
    mask: Option<WordMask>,
}

impl PraLatch {
    /// An empty latch.
    pub const fn new() -> Self {
        PraLatch { mask: None }
    }

    /// Latches a mask delivered on the address bus.
    pub fn load(&mut self, mask: WordMask) {
        self.mask = Some(mask);
    }

    /// The held mask, if any.
    pub fn mask(&self) -> Option<WordMask> {
        self.mask
    }

    /// Clears the latch (bank precharge).
    pub fn clear(&mut self) {
        self.mask = None;
    }
}

/// Result of a row activation inside one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipActivation {
    /// Which of the 8 MAT groups drive their local wordlines.
    pub selected_groups: WordMask,
    /// MATs activated in this chip's addressed sub-array (2 per group).
    pub mats: u32,
    /// Extra command cycles before the column command may issue (the mask
    /// transfer of Fig. 7a costs one cycle for partial activations).
    pub extra_cycles: u64,
}

/// The PRA-visible state of one DRAM chip: eight banks' PRA latches plus
/// the ECC-chip strapping option of Section 4.2 (a chip whose PRA# pin is
/// tied to VDD ignores masks and always activates full rows, so x72 ECC
/// DIMMs work unchanged).
#[derive(Debug, Clone)]
pub struct PraChip {
    latches: Vec<PraLatch>,
    ecc_strapped: bool,
}

impl PraChip {
    /// A chip with `banks` banks participating in PRA.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn new(banks: usize) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented # Panics constructor contract, runs once before simulation
        assert!(banks > 0, "a chip needs at least one bank");
        PraChip {
            latches: vec![PraLatch::new(); banks],
            ecc_strapped: false,
        }
    }

    /// A chip whose PRA# pin is strapped high (the ECC chip of an x72
    /// DIMM): every activation is a full-row activation and masks on the
    /// address bus are ignored.
    pub fn new_ecc_strapped(banks: usize) -> Self {
        PraChip {
            ecc_strapped: true,
            ..Self::new(banks)
        }
    }

    /// Whether this chip ignores PRA commands.
    pub fn is_ecc_strapped(&self) -> bool {
        self.ecc_strapped
    }

    /// Performs a row activation on `bank`.
    ///
    /// For [`PraPin::PartialActivation`] the mask (delivered over the
    /// address bus one cycle after ACT) selects MAT groups through the
    /// wordline gates; an ECC-strapped chip treats any activation as full.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range, or if a partial activation carries
    /// an empty mask (the memory controller never issues one).
    pub fn activate(&mut self, bank: usize, pin: PraPin, mask: WordMask) -> ChipActivation {
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — an out-of-range bank is a controller bug, not a workload property
        assert!(bank < self.latches.len(), "bank {bank} out of range");
        let effective = if self.ecc_strapped || pin == PraPin::FullActivation {
            WordMask::FULL
        } else {
            // sim-lint: allow(no-panic-hot-path): documented # Panics contract — the controller never issues an empty-mask partial ACT
            assert!(
                !mask.is_empty(),
                "partial activation requires a non-empty mask"
            );
            mask
        };
        self.latches[bank].load(effective);
        ChipActivation {
            selected_groups: effective,
            mats: effective.granularity_eighths() * 2,
            extra_cycles: if effective.is_full() { 0 } else { 1 },
        }
    }

    /// Performs a row activation on `bank` from a raw mask *transfer*,
    /// decoding it as the chip would: on a detected fault (parity mismatch
    /// or empty mask) the chip degrades to a fail-safe full-row activation
    /// — never a narrower one, which could silently drop write data. The
    /// failed transfer still cost its address-bus cycle, so the fallback
    /// keeps `extra_cycles == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn activate_checked(
        &mut self,
        bank: usize,
        pin: PraPin,
        transfer: MaskTransfer,
    ) -> GuardedActivation {
        if self.ecc_strapped || pin == PraPin::FullActivation {
            return GuardedActivation {
                activation: self.activate(bank, pin, WordMask::FULL),
                fault: None,
            };
        }
        match transfer.decode() {
            Ok(mask) => GuardedActivation {
                activation: self.activate(bank, pin, mask),
                fault: None,
            },
            Err(fault) => {
                let mut activation = self.activate(bank, PraPin::FullActivation, WordMask::FULL);
                activation.extra_cycles = 1;
                GuardedActivation {
                    activation,
                    fault: Some(fault),
                }
            }
        }
    }

    /// Bank precharge: clears the PRA latch.
    pub fn precharge(&mut self, bank: usize) {
        self.latches[bank].clear();
    }

    /// The mask currently held by a bank's latch.
    pub fn latched_mask(&self, bank: usize) -> Option<WordMask> {
        self.latches[bank].mask()
    }

    /// Whether a write burst's word `word` would reach sense amplifiers
    /// (data heading to unselected MATs is "don't care", Section 4.1.3).
    pub fn word_lands(&self, bank: usize, word: u8) -> bool {
        // sim-lint: allow(no-panic-hot-path): word index argument contract; callers iterate 0..WORDS_PER_LINE
        assert!((word as usize) < WORDS_PER_LINE);
        self.latches[bank].mask().is_some_and(|m| m.contains(word))
    }
}

/// The memory-controller side of Section 4.2's partial-row bookkeeping: an
/// 8-bit PRA mask per bank per rank (64 bits per rank in the baseline),
/// tracking which part of each opened row is activated.
#[derive(Debug, Clone)]
pub struct ControllerPraState {
    masks: Vec<Vec<Option<WordMask>>>,
}

impl ControllerPraState {
    /// State for `ranks` ranks of `banks` banks.
    pub fn new(ranks: usize, banks: usize) -> Self {
        ControllerPraState {
            masks: vec![vec![None; banks]; ranks],
        }
    }

    /// Records an activation's mask.
    pub fn on_activate(&mut self, rank: usize, bank: usize, mask: WordMask) {
        self.masks[rank][bank] = Some(mask);
    }

    /// Clears on precharge.
    pub fn on_precharge(&mut self, rank: usize, bank: usize) {
        self.masks[rank][bank] = None;
    }

    /// Whether a request needing `needed` words would be a *false row
    /// buffer hit* (row open, coverage insufficient — Section 5.2.1).
    pub fn is_false_hit(&self, rank: usize, bank: usize, needed: WordMask) -> bool {
        match self.masks[rank][bank] {
            Some(open) => !needed.is_subset_of(open),
            None => false,
        }
    }

    /// Storage cost in bits per rank: 8 bits per bank (the paper's "only 64
    /// bits per rank").
    pub fn bits_per_rank(&self) -> usize {
        self.masks.first().map_or(0, |banks| banks.len() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_activation_selects_groups() {
        let mut chip = PraChip::new(8);
        let mask = WordMask::from_words([0, 7]); // the paper's 10000001b
        let act = chip.activate(3, PraPin::PartialActivation, mask);
        assert_eq!(act.selected_groups, mask);
        assert_eq!(act.mats, 4, "two groups of two MATs");
        assert_eq!(act.extra_cycles, 1, "mask transfer costs a cycle");
        assert_eq!(chip.latched_mask(3), Some(mask));
        assert!(chip.word_lands(3, 0) && chip.word_lands(3, 7));
        assert!(
            !chip.word_lands(3, 1),
            "unselected MATs treat data as don't-care"
        );
    }

    #[test]
    fn full_pin_activates_everything() {
        let mut chip = PraChip::new(8);
        let act = chip.activate(0, PraPin::FullActivation, WordMask::single(0));
        assert_eq!(act.selected_groups, WordMask::FULL);
        assert_eq!(act.mats, 16);
        assert_eq!(act.extra_cycles, 0);
    }

    #[test]
    fn full_mask_partial_behaves_like_conventional() {
        // Fig. 7b: a full-mask PRA activation has conventional timing.
        let mut chip = PraChip::new(8);
        let act = chip.activate(0, PraPin::PartialActivation, WordMask::FULL);
        assert_eq!(act.extra_cycles, 0);
        assert_eq!(act.mats, 16);
    }

    #[test]
    fn ecc_strapped_chip_ignores_masks() {
        let mut chip = PraChip::new_ecc_strapped(8);
        assert!(chip.is_ecc_strapped());
        let act = chip.activate(1, PraPin::PartialActivation, WordMask::single(2));
        assert_eq!(act.selected_groups, WordMask::FULL, "ECC chip always full");
        assert_eq!(act.extra_cycles, 0);
        assert!(chip.word_lands(1, 5), "every word reaches the ECC chip");
    }

    #[test]
    fn precharge_clears_latch() {
        let mut chip = PraChip::new(8);
        chip.activate(2, PraPin::PartialActivation, WordMask::single(4));
        chip.precharge(2);
        assert_eq!(chip.latched_mask(2), None);
        assert!(!chip.word_lands(2, 4));
    }

    #[test]
    #[should_panic(expected = "non-empty mask")]
    fn empty_partial_mask_rejected() {
        PraChip::new(8).activate(0, PraPin::PartialActivation, WordMask::EMPTY);
    }

    #[test]
    fn mask_transfer_roundtrips() {
        for bits in 0..=u8::MAX {
            let mask = WordMask::from_bits(bits);
            let decoded = MaskTransfer::encode(mask).decode();
            if mask.is_empty() {
                assert_eq!(decoded, Err(MaskFault::Empty));
            } else {
                assert_eq!(decoded, Ok(mask));
            }
        }
    }

    #[test]
    fn single_flip_is_always_detected_and_degrades_to_full_row() {
        let mut chip = PraChip::new(8);
        let mask = WordMask::from_words([0, 7]);
        for bit in 0..WORDS_PER_LINE as u8 {
            let transfer = MaskTransfer::encode(mask).with_flipped_bit(bit);
            assert_eq!(transfer.decode(), Err(MaskFault::Parity));
            let guarded = chip.activate_checked(3, PraPin::PartialActivation, transfer);
            assert_eq!(guarded.fault, Some(MaskFault::Parity));
            assert_eq!(
                guarded.activation.selected_groups,
                WordMask::FULL,
                "degradation is fail-safe: full row, never narrower"
            );
            assert_eq!(guarded.activation.mats, 16);
            assert_eq!(
                guarded.activation.extra_cycles, 1,
                "the failed transfer still cost its cycle"
            );
        }
    }

    #[test]
    fn clean_transfer_activates_partially() {
        let mut chip = PraChip::new(8);
        let mask = WordMask::from_words([2, 5]);
        let guarded =
            chip.activate_checked(0, PraPin::PartialActivation, MaskTransfer::encode(mask));
        assert_eq!(guarded.fault, None);
        assert_eq!(guarded.activation.selected_groups, mask);
        assert_eq!(guarded.activation.mats, 4);
        // Full-pin path never consults the transfer.
        let full = chip.activate_checked(
            1,
            PraPin::FullActivation,
            MaskTransfer::encode(mask).with_flipped_bit(0),
        );
        assert_eq!(full.fault, None);
        assert_eq!(full.activation.selected_groups, WordMask::FULL);
    }

    #[test]
    fn even_parity_misses_double_flips() {
        // The documented limitation: two upsets cancel in the parity sum,
        // so the corrupted mask decodes cleanly. Pinned here so a future
        // stronger code (e.g. two parity bits) shows up as a test change.
        let mask = WordMask::from_words([0, 3]);
        let transfer = MaskTransfer::encode(mask)
            .with_flipped_bit(1)
            .with_flipped_bit(6);
        let decoded = transfer.decode().expect("double flip escapes parity");
        assert_ne!(decoded, mask, "...and yields a wrong mask undetected");
    }

    #[test]
    fn empty_transfer_is_rejected_not_panicking() {
        let mut chip = PraChip::new(8);
        // An upset that zeroes a single-bit mask: decode reports Parity
        // (the parity bit no longer matches), still degrading safely.
        let transfer = MaskTransfer::encode(WordMask::single(4)).with_flipped_bit(4);
        let guarded = chip.activate_checked(0, PraPin::PartialActivation, transfer);
        assert!(guarded.fault.is_some());
        assert_eq!(guarded.activation.selected_groups, WordMask::FULL);
    }

    #[test]
    fn controller_state_tracks_false_hits() {
        let mut st = ControllerPraState::new(2, 8);
        assert_eq!(st.bits_per_rank(), 64, "the paper's 64 bits per rank");
        st.on_activate(0, 3, WordMask::from_words([0, 1]));
        assert!(
            !st.is_false_hit(0, 3, WordMask::single(0)),
            "covered write hits"
        );
        assert!(
            st.is_false_hit(0, 3, WordMask::single(5)),
            "uncovered word is a false hit"
        );
        assert!(
            st.is_false_hit(0, 3, WordMask::FULL),
            "reads need full coverage"
        );
        st.on_precharge(0, 3);
        assert!(
            !st.is_false_hit(0, 3, WordMask::FULL),
            "closed bank cannot false-hit"
        );
    }
}
