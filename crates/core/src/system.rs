//! The full-system simulation builder.

use std::path::PathBuf;

use cache_sim::{CacheHierarchy, HierarchyConfig};
use cpu_sim::{CpuSystem, InstructionSource, SystemConfig};
use dram_sim::{DramConfig, MemorySystem, PagePolicy};
use sim_fault::{Domain, FaultPlan};
use sim_snap::SnapState as _;
use workloads::{BenchProfile, Trace, WorkloadGen};

use crate::error::SimError;

/// What drives one core: a synthetic profile or a recorded trace (replayed
/// in a loop, SimPoint-style).
#[derive(Debug, Clone)]
enum AppSpec {
    Profile(BenchProfile),
    Trace { name: String, trace: Trace },
}

impl AppSpec {
    fn name(&self) -> &str {
        match self {
            AppSpec::Profile(p) => p.name,
            AppSpec::Trace { name, .. } => name,
        }
    }

    fn source(&self, seed: u64, base: u64) -> Box<dyn InstructionSource> {
        match self {
            AppSpec::Profile(p) => Box::new(WorkloadGen::new(*p, seed, base)),
            AppSpec::Trace { trace, .. } => Box::new(trace.replay()),
        }
    }
}

use crate::report::Report;
use crate::scheme::Scheme;

/// DRAM generation the simulated system is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DramGeneration {
    /// The paper's 2 Gb x8 DDR3-1600 baseline.
    #[default]
    Ddr3,
    /// 8 Gb x8 DDR4-2400 with estimated power parameters (an exploration
    /// target beyond the paper; see `PowerParams::ddr4_2400_estimate`).
    Ddr4,
}

/// Builds and runs one simulation: a workload (1..=4 applications) under a
/// [`Scheme`] and a [`PagePolicy`].
///
/// # Example
///
/// ```
/// use pra_core::{Scheme, SimBuilder};
/// use dram_sim::PagePolicy;
///
/// let report = SimBuilder::new()
///     .app(workloads::gups())
///     .scheme(Scheme::Pra)
///     .policy(PagePolicy::RelaxedClosePage)
///     .instructions(20_000)
///     .run();
/// assert!(report.power.total() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    name: Option<String>,
    apps: Vec<AppSpec>,
    scheme: Scheme,
    policy: PagePolicy,
    instructions: u64,
    seed: u64,
    max_cpu_cycles: u64,
    warmup_mem_ops: Option<u64>,
    scheme_override: Option<dram_sim::SchemeBehavior>,
    prefetch_next_line: bool,
    generation: DramGeneration,
    ecc_x72: bool,
    trace_out: Option<PathBuf>,
    trace_ring: Option<std::rc::Rc<std::cell::RefCell<sim_obs::RingSink>>>,
    metrics_out: Option<PathBuf>,
    metrics_epoch: u64,
    power_telemetry: bool,
    faults: Option<FaultPlan>,
    recovery: Option<dram_sim::RecoveryConfig>,
    liveness: dram_sim::LivenessConfig,
    escalation_age: Option<u64>,
    checkpoint_every: u64,
    checkpoint_dir: Option<PathBuf>,
    restore_from: Option<PathBuf>,
}

/// Checkpoint/restore bookkeeping for one run, reported alongside the
/// [`Report`] by [`SimBuilder::try_run_snap`].
///
/// Deliberately *not* part of the [`Report`] or the in-simulation metrics
/// registry: how often the host process snapshotted says nothing about the
/// simulated machine, and folding it into the report would change
/// [`Report::state_digest`] — breaking the contract that a restored run
/// digests identically to an uninterrupted one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapOutcome {
    /// Checkpoints successfully written during the run.
    pub checkpoints_written: u64,
    /// Memory cycle of the newest checkpoint written, if any.
    pub last_checkpoint_cycle: Option<u64>,
    /// Memory cycle this run resumed from, when a restore was requested.
    pub restored_from_cycle: Option<u64>,
    /// Checkpoint writes that failed (the run continues; a missing
    /// checkpoint only widens the recovery gap).
    pub write_errors: u64,
}

impl SimBuilder {
    /// A builder with no applications yet, the baseline scheme, relaxed
    /// close-page and a small default run length.
    pub fn new() -> Self {
        SimBuilder {
            name: None,
            apps: Vec::new(),
            scheme: Scheme::Baseline,
            policy: PagePolicy::RelaxedClosePage,
            instructions: 100_000,
            seed: 1,
            max_cpu_cycles: 0, // derived from instructions unless set
            warmup_mem_ops: None,
            scheme_override: None,
            prefetch_next_line: false,
            generation: DramGeneration::Ddr3,
            ecc_x72: false,
            trace_out: None,
            trace_ring: None,
            metrics_out: None,
            metrics_epoch: 0,
            power_telemetry: true,
            faults: None,
            recovery: None,
            liveness: dram_sim::LivenessConfig::disabled(),
            escalation_age: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            restore_from: None,
        }
    }

    /// Adds one application (one core).
    pub fn app(mut self, profile: BenchProfile) -> Self {
        self.apps.push(AppSpec::Profile(profile));
        self
    }

    /// Adds one core driven by a recorded trace, replayed in a loop
    /// (SimPoint-style region replay).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn app_trace(mut self, name: impl Into<String>, trace: Trace) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented # Panics builder contract, runs once before simulation
        assert!(!trace.is_empty(), "cannot drive a core with an empty trace");
        self.apps.push(AppSpec::Trace {
            name: name.into(),
            trace,
        });
        self
    }

    /// Runs `n` identical instances of `profile` (the paper's homogeneous
    /// workloads use four).
    pub fn homogeneous(mut self, profile: BenchProfile, n: usize) -> Self {
        self.apps
            .extend(std::iter::repeat_n(AppSpec::Profile(profile), n));
        self
    }

    /// Adds a 4-application mix.
    pub fn mix(mut self, apps: [BenchProfile; 4]) -> Self {
        self.apps.extend(apps.map(AppSpec::Profile));
        self
    }

    /// Overrides the workload name in the report (defaults to joined app
    /// names).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Selects the scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Selects the DRAM generation (DDR3 default; DDR4-2400 as an
    /// exploration target).
    pub fn dram_generation(mut self, generation: DramGeneration) -> Self {
        self.generation = generation;
        self
    }

    /// Models an x72 ECC DIMM (Section 4.2): a ninth chip whose PRA# pin
    /// is strapped high stores ECC codes, activating full rows and moving
    /// its byte lane on every access.
    pub fn ecc_x72(mut self, enabled: bool) -> Self {
        self.ecc_x72 = enabled;
        self
    }

    /// Enables the next-line prefetcher in the shared L2 (an extension
    /// beyond the paper's configuration; off by default).
    pub fn prefetch_next_line(mut self, enabled: bool) -> Self {
        self.prefetch_next_line = enabled;
        self
    }

    /// Replaces the DRAM-side behaviour with a custom descriptor while
    /// keeping the selected [`Scheme`]'s cache-side settings — the hook the
    /// ablation studies use (e.g. PRA without relaxed tRRD/tFAW).
    pub fn scheme_behavior_override(mut self, behavior: dram_sim::SchemeBehavior) -> Self {
        self.scheme_override = Some(behavior);
        self
    }

    /// Selects the page policy (the address mapping follows the paper's
    /// pairing automatically).
    pub fn policy(mut self, policy: PagePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Instructions each core retires.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// RNG seed for the workload generators.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Hard cap on CPU cycles (default: 2000 cycles per instruction,
    /// generous enough for the most memory-bound workloads).
    pub fn max_cpu_cycles(mut self, n: u64) -> Self {
        self.max_cpu_cycles = n;
        self
    }

    /// Streams every trace event — DRAM commands, cache fills/writebacks
    /// and core-stall episodes, interleaved in one file — as JSON Lines to
    /// `path` (see DESIGN.md "Observability" for the event schema). Off by
    /// default; the run is bit-identical with or without tracing.
    pub fn trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Feeds every trace event into a shared in-memory [`sim_obs::RingSink`]
    /// instead of a file — the flight-recorder mode behind
    /// `pra trace export-perfetto`. The caller keeps its own `Rc` clone and
    /// reads the retained events (and the overflow count) back after the
    /// run; [`SimBuilder::try_run`] also publishes the overflow count as the
    /// `trace.dropped_events` counter. Ignored when
    /// [`trace_out`](Self::trace_out) streams to a file instead.
    pub fn trace_ring(mut self, ring: std::rc::Rc<std::cell::RefCell<sim_obs::RingSink>>) -> Self {
        self.trace_ring = Some(ring);
        self
    }

    /// Takes a metrics snapshot every `cycles` memory cycles. The delta
    /// records land in the report's `metrics` field (and in the
    /// [`metrics_out`](Self::metrics_out) file when set). 0 disables.
    pub fn metrics_epoch(mut self, cycles: u64) -> Self {
        self.metrics_epoch = cycles;
        self
    }

    /// Enables or disables the live power-telemetry layer (on by default):
    /// per-bank residency tracking in the DRAM energy accountant plus
    /// `energy.*`/`power.*` metric publication and `POWER_EPOCH` /
    /// `POWER_RANK` trace events at every epoch close. The simulation
    /// itself is bit-identical either way — telemetry only observes.
    pub fn power_telemetry(mut self, enabled: bool) -> Self {
        self.power_telemetry = enabled;
        self
    }

    /// Streams each closed epoch snapshot as a JSON line to `path`.
    /// Implies a default epoch of 100 000 memory cycles unless
    /// [`metrics_epoch`](Self::metrics_epoch) chose another length.
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Memory operations each core's generator plays through the cache
    /// hierarchy *functionally* (no timing, no DRAM traffic) before the
    /// measured phase, so the 4 MB LLC reaches its steady-state content
    /// *and* dirty fraction — the trace-warmup step of standard simulation
    /// methodology. Cache and DRAM statistics reset afterwards. The default
    /// scales inversely with core count (the shared LLC turns over `cores`
    /// times faster): `1_000_000 / cores` per core, roughly three LLC
    /// capacity turnovers.
    pub fn warmup_mem_ops(mut self, n: u64) -> Self {
        self.warmup_mem_ops = Some(n);
        self
    }

    /// Injects faults during the measured phase according to `plan` (see
    /// [`sim_fault`]): per-domain injectors derived from `plan.seed` attach
    /// to the DRAM controller and the cache hierarchy. A no-op plan (all
    /// rates zero) attaches nothing, keeping the run bit-identical to one
    /// without a plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Arms the controller-side recovery pipeline: C/A parity over issued
    /// commands, ALERT_n-style delayed error signalling, bounded replay
    /// with per-command retry budgets, and a row health scoreboard that
    /// demotes persistently faulty rows to full-row activation (see
    /// [`sim_recover`](dram_sim::RecoveryConfig)). Without faults the
    /// pipeline is inert and the run is bit-identical to one without it.
    pub fn recovery(mut self, config: dram_sim::RecoveryConfig) -> Self {
        self.recovery = Some(config);
        self
    }

    /// Arms the DRAM liveness watchdogs (both in memory cycles, 0 disables
    /// each): `max_no_retire` bounds how long the memory system may tick
    /// without retiring any request while work is pending;
    /// `max_queue_age` bounds how long any single request may sit queued.
    /// A trip surfaces as [`SimError::Liveness`] from
    /// [`SimBuilder::try_run`], carrying the victim's address/bank trail.
    pub fn liveness_watchdog(mut self, max_no_retire: u64, max_queue_age: u64) -> Self {
        self.liveness = dram_sim::LivenessConfig {
            max_no_retire_cycles: max_no_retire,
            max_queue_age_cycles: max_queue_age,
        };
        self
    }

    /// Overrides the FR-FCFS starvation-escalation age (memory cycles a
    /// request may wait before the scheduler stops taking row hits over it;
    /// 0 disables escalation). Defaults to
    /// [`dram_sim::DEFAULT_ESCALATION_AGE`].
    pub fn starvation_escalation_age(mut self, cycles: u64) -> Self {
        self.escalation_age = Some(cycles);
        self
    }

    /// Writes a full-state checkpoint every `mem_cycles` memory cycles
    /// (0 disables, the default). Requires
    /// [`checkpoint_dir`](Self::checkpoint_dir); snapshots are written
    /// atomically (temp file + rename) as `snap-<cycle>.snap`, named so
    /// lexicographic order is cycle order. The simulation itself is
    /// bit-identical with checkpointing on or off — serialisation only
    /// reads state.
    pub fn checkpoint_every(mut self, mem_cycles: u64) -> Self {
        self.checkpoint_every = mem_cycles;
        self
    }

    /// Directory checkpoints are written into (created if absent).
    /// Requires [`checkpoint_every`](Self::checkpoint_every).
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Restores the complete simulator state from a snapshot file before
    /// the measured phase and continues the run from that cycle. The
    /// builder must be configured identically to the run that wrote the
    /// snapshot — the file's config digest is verified against
    /// [`config_digest`](Self::config_digest) and a mismatch is rejected.
    /// A run restored at cycle C finishes with a [`Report::state_digest`]
    /// bit-identical to the uninterrupted run.
    pub fn restore(mut self, snapshot: impl Into<PathBuf>) -> Self {
        self.restore_from = Some(snapshot.into());
        self
    }

    /// The metrics epoch actually used by the run ([`metrics_out`]
    /// (Self::metrics_out) implies a 100 000-cycle default).
    fn effective_metrics_epoch(&self) -> u64 {
        if self.metrics_epoch == 0 && self.metrics_out.is_some() {
            100_000
        } else {
            self.metrics_epoch
        }
    }

    /// FNV-1a digest over every knob that shapes simulated state, stamped
    /// into snapshot headers so a restore into a differently-configured
    /// builder is rejected instead of silently diverging. Output paths and
    /// trace sinks are excluded (they only observe); the *effective*
    /// metrics epoch is included because epoch sealing mutates the
    /// serialised observer.
    pub fn config_digest(&self) -> u64 {
        let mut w = sim_snap::SnapWriter::new();
        w.section("pra-sim-config");
        w.u32(1); // digest layout version
        w.seq(self.apps.len());
        for app in &self.apps {
            match app {
                AppSpec::Profile(p) => {
                    w.u8(0);
                    w.str(&format!("{p:?}"));
                }
                AppSpec::Trace { name, trace } => {
                    w.u8(1);
                    w.str(name);
                    w.seq(trace.len());
                    for op in trace.ops() {
                        match *op {
                            cpu_sim::Op::Compute(n) => {
                                w.u8(0);
                                w.u32(n);
                            }
                            cpu_sim::Op::Load(a) => {
                                w.u8(1);
                                w.u64(a.raw());
                            }
                            cpu_sim::Op::Store(a, m) => {
                                w.u8(2);
                                w.u64(a.raw());
                                w.u8(m.bits());
                            }
                        }
                    }
                }
            }
        }
        w.str(self.scheme.name());
        w.str(&format!("{:?}", self.policy));
        w.u64(self.instructions);
        w.u64(self.seed);
        w.u64(self.max_cpu_cycles);
        w.opt_u64(self.warmup_mem_ops);
        w.bool(self.scheme_override.is_some());
        if let Some(b) = &self.scheme_override {
            w.str(&format!("{b:?}"));
        }
        w.bool(self.prefetch_next_line);
        w.str(&format!("{:?}", self.generation));
        w.bool(self.ecc_x72);
        w.u64(self.effective_metrics_epoch());
        w.bool(self.power_telemetry);
        w.bool(self.faults.is_some());
        if let Some(p) = &self.faults {
            w.str(&format!("{p:?}"));
        }
        w.bool(self.recovery.is_some());
        if let Some(r) = &self.recovery {
            w.str(&format!("{r:?}"));
        }
        w.str(&format!("{:?}", self.liveness));
        w.opt_u64(self.escalation_age);
        sim_snap::fnv1a_64(&w.into_bytes())
    }

    /// Builds the system and runs it to completion.
    ///
    /// # Panics
    ///
    /// Panics if no applications were added, the configuration or fault
    /// plan is inconsistent, or a requested trace or metrics output file
    /// cannot be created. Use [`SimBuilder::try_run`] to handle these as
    /// [`SimError`]s instead.
    pub fn run(&self) -> Report {
        // sim-lint: allow(no-panic-hot-path): documented panicking facade; try_run is the fallible API
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the simulation twice and verifies the two reports are
    /// byte-identical (same [`Report::state_digest`]), catching
    /// nondeterminism in the stack or in an attached fault plan.
    ///
    /// # Errors
    ///
    /// Any [`SimBuilder::try_run`] error, plus
    /// [`SimError::Nondeterministic`] with both digests on a mismatch.
    pub fn try_run_verified(&self) -> Result<Report, SimError> {
        let first = self.try_run()?;
        let second = self.try_run()?;
        let (a, b) = (first.state_digest(), second.state_digest());
        if a != b {
            return Err(SimError::Nondeterministic {
                first: a,
                second: b,
            });
        }
        Ok(second)
    }

    /// Builds the system and runs it to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::NoApplications`] when no applications were added,
    /// [`SimError::Config`]/[`SimError::FaultPlan`] on inconsistent inputs,
    /// and [`SimError::Io`] when a trace or metrics output file cannot be
    /// created.
    pub fn try_run(&self) -> Result<Report, SimError> {
        self.try_run_snap().map(|(report, _)| report)
    }

    /// [`Self::try_run`] plus the checkpoint/restore bookkeeping: how many
    /// snapshots the run wrote, the newest checkpoint cycle, and — when
    /// [`restore`](Self::restore) was requested — the cycle the run resumed
    /// from.
    ///
    /// # Errors
    ///
    /// Everything [`Self::try_run`] returns, plus
    /// [`SimError::CheckpointConfig`] when checkpointing is
    /// half-configured and [`SimError::Snapshot`] when the restore file is
    /// missing, torn, corrupt or from a differently-configured run.
    pub fn try_run_snap(&self) -> Result<(Report, SnapOutcome), SimError> {
        if self.apps.is_empty() {
            return Err(SimError::NoApplications);
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        match (self.checkpoint_every, &self.checkpoint_dir) {
            (0, Some(_)) => {
                return Err(SimError::CheckpointConfig(
                    "checkpoint_dir is set but checkpoint_every is 0: \
                     choose a checkpoint interval"
                        .to_string(),
                ))
            }
            (n, None) if n > 0 => {
                return Err(SimError::CheckpointConfig(
                    "checkpoint_every is set but no checkpoint_dir: \
                     choose a directory for the snapshots"
                        .to_string(),
                ))
            }
            _ => {}
        }
        let cores = self.apps.len();
        let hierarchy_config = HierarchyConfig {
            dbi: self.scheme.uses_dbi(),
            prefetch_next_line: self.prefetch_next_line,
            ..HierarchyConfig::paper(cores)
        };
        let behavior = self
            .scheme_override
            .unwrap_or_else(|| self.scheme.behavior());
        let mut dram_config = match self.generation {
            DramGeneration::Ddr3 => DramConfig::paper_baseline(self.policy, behavior),
            DramGeneration::Ddr4 => DramConfig::ddr4_2400(self.policy, behavior),
        };
        dram_config.power.ecc_x72 = self.ecc_x72;
        dram_config.recovery = self.recovery;
        dram_config.liveness = self.liveness;
        if let Some(age) = self.escalation_age {
            dram_config.starvation_escalation_age = age;
        }
        let mut hierarchy = CacheHierarchy::with_dram_view(
            hierarchy_config,
            dram_config.geometry,
            dram_config.mapping,
        );
        let mut mem = MemorySystem::try_new(dram_config)?;
        mem.set_power_telemetry(self.power_telemetry);
        // A no-op plan attaches nothing: the injector-free fast path stays
        // bit-identical to a run without a plan.
        let fault_plan = self.faults.filter(|p| !p.is_noop());
        if let Some(plan) = &fault_plan {
            mem.set_fault_injector(plan.injector(Domain::Dram));
        }
        // Give each core a disjoint 2 GB slice of the 8 GB physical space,
        // modelling separate address spaces.
        let mut generators: Vec<Box<dyn InstructionSource>> = self
            .apps
            .iter()
            .enumerate()
            .map(|(core, spec)| {
                spec.source(
                    self.seed.wrapping_add(core as u64 * 0x1234_5678),
                    (core as u64) << 31,
                )
            })
            .collect();
        // Functional warmup: play each generator's prefix through the cache
        // hierarchy so the LLC holds a steady-state mix of (dirty) lines,
        // then reset statistics. Writebacks produced during warmup are
        // dropped — no DRAM timing or energy is involved.
        let warmup = self.warmup_mem_ops.unwrap_or(1_000_000 / cores as u64);
        let warmup_prof = sim_prof::span!("sim.warmup");
        for (core, generator) in generators.iter_mut().enumerate() {
            let mut mem_ops = 0;
            while mem_ops < warmup {
                match generator.next_op() {
                    cpu_sim::Op::Compute(_) => {}
                    cpu_sim::Op::Load(a) => {
                        hierarchy.access(core, a, None);
                        mem_ops += 1;
                    }
                    cpu_sim::Op::Store(a, mask) => {
                        hierarchy.access(core, a, Some(mask));
                        mem_ops += 1;
                    }
                }
            }
        }
        drop(warmup_prof);
        hierarchy.reset_stats();
        // Cache-side faults start with the measured phase, after warmup, so
        // warmup cache contents are identical with and without a plan.
        if let Some(plan) = &fault_plan {
            hierarchy.set_fault_injector(plan.injector(Domain::Cache));
        }
        let mut system = CpuSystem::new(
            SystemConfig::paper(),
            hierarchy,
            mem,
            generators,
            self.instructions,
        );
        if let Some(path) = &self.trace_out {
            let sink = sim_obs::JsonlSink::create(path).map_err(|e| SimError::Io {
                path: path.clone(),
                source: e,
            })?;
            // One shared sink so DRAM, cache and core events interleave in
            // emission order within a single JSONL stream.
            let shared = std::rc::Rc::new(std::cell::RefCell::new(sink));
            system
                .mem_mut()
                .set_trace_sink(Box::new(std::rc::Rc::clone(&shared)));
            system
                .hierarchy_mut()
                .set_trace_sink(Box::new(std::rc::Rc::clone(&shared)));
            system.set_trace_sink(Box::new(shared));
        } else if let Some(ring) = &self.trace_ring {
            system
                .mem_mut()
                .set_trace_sink(Box::new(std::rc::Rc::clone(ring)));
            system
                .hierarchy_mut()
                .set_trace_sink(Box::new(std::rc::Rc::clone(ring)));
            system.set_trace_sink(Box::new(std::rc::Rc::clone(ring)));
        }
        let epoch = if self.metrics_epoch == 0 && self.metrics_out.is_some() {
            100_000
        } else {
            self.metrics_epoch
        };
        if epoch > 0 {
            let out = match self.metrics_out.as_ref() {
                Some(path) => {
                    let file = std::fs::File::create(path).map_err(|e| SimError::Io {
                        path: path.clone(),
                        source: e,
                    })?;
                    Some(Box::new(std::io::BufWriter::new(file)) as Box<dyn std::io::Write>)
                }
                None => None,
            };
            system.mem_mut().set_metrics_epochs(epoch, out);
        }
        let mut snap = SnapOutcome::default();
        let digest = self.config_digest();
        if let Some(path) = &self.restore_from {
            let snap_err = |source| SimError::Snapshot {
                path: path.clone(),
                source,
            };
            let (header, payload) =
                sim_snap::read_snapshot(path, Some(digest)).map_err(snap_err)?;
            let mut r = sim_snap::SnapReader::new(&payload);
            system.snap_load(&mut r).map_err(snap_err)?;
            r.finish().map_err(snap_err)?;
            snap.restored_from_cycle = Some(header.cycle);
            let cycle = header.cycle;
            system
                .mem_mut()
                .observer_mut()
                .emit(|| sim_obs::TraceEvent::Restore { cycle });
        }
        let cap = if self.max_cpu_cycles > 0 {
            self.max_cpu_cycles
        } else {
            self.instructions.saturating_mul(2000).max(10_000_000)
        };
        let outcome = {
            let _prof = sim_prof::span!("sim.run");
            match &self.checkpoint_dir {
                Some(dir) => {
                    system.try_run_with_checkpoints(cap, self.checkpoint_every, |sys, cycle| {
                        let mut w = sim_snap::SnapWriter::new();
                        sys.snap_save(&mut w);
                        match sim_snap::write_snapshot(dir, digest, cycle, &w.into_bytes()) {
                            Ok(_) => {
                                let seq = snap.checkpoints_written as u32;
                                sys.mem_mut()
                                    .observer_mut()
                                    .emit(|| sim_obs::TraceEvent::Checkpoint { cycle, seq });
                                snap.checkpoints_written += 1;
                                snap.last_checkpoint_cycle = Some(cycle);
                            }
                            // Keep simulating: a failed write only widens
                            // the gap a later recovery replays.
                            Err(_) => snap.write_errors += 1,
                        }
                        true
                    })?
                }
                None => system.try_run(cap)?,
            }
        };
        if let Some(ring) = &self.trace_ring {
            // Surface silent flight-recorder overflow: the retained window
            // is only the tail of the run once this counter is nonzero.
            let dropped = ring.borrow().dropped();
            let reg = &mut system.mem_mut().observer_mut().registry;
            let id = reg.counter("trace.dropped_events");
            reg.set_counter(id, dropped);
        }

        let workload = self.name.clone().unwrap_or_else(|| {
            self.apps
                .iter()
                .map(AppSpec::name)
                .collect::<Vec<_>>()
                .join("+")
        });
        let report = Report {
            workload,
            scheme: self
                .scheme_override
                .map_or_else(|| self.scheme.name().to_string(), |b| b.name.to_string()),
            ipc: outcome.per_core.iter().map(|r| r.ipc()).collect(),
            cpu_cycles: outcome.cpu_cycles,
            runtime_ns: system.mem().elapsed_ns(),
            energy: system.mem().energy(),
            power: system.mem().power(),
            dram: system.mem().stats().clone(),
            cache: system.hierarchy().stats().clone(),
            metrics: system.mem().observer().snapshots().to_vec(),
            faults: system
                .mem()
                .fault_counts()
                .merged(system.hierarchy().fault_counts()),
            recovery: system.mem().recovery_counts(),
            timed_out: outcome.timed_out,
        };
        Ok((report, snap))
    }
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: Scheme) -> Report {
        SimBuilder::new()
            .app(workloads::gups())
            .scheme(scheme)
            .instructions(20_000)
            .warmup_mem_ops(400_000)
            .run()
    }

    #[test]
    fn baseline_run_completes() {
        let r = quick(Scheme::Baseline);
        assert!(!r.timed_out, "20k instructions must fit the cycle cap");
        assert_eq!(r.ipc.len(), 1);
        assert!(r.ipc[0] > 0.0);
        assert!(r.power.total() > 0.0);
        assert!(r.dram.reads_completed > 0);
        assert!(r.dram.writes_completed > 0, "GUPS must generate writebacks");
    }

    #[test]
    fn pra_reduces_act_and_wr_io_power_on_gups() {
        let base = quick(Scheme::Baseline);
        let pra = quick(Scheme::Pra);
        assert!(
            pra.power.act_pre < base.power.act_pre,
            "PRA ACT power {} must undercut baseline {}",
            pra.power.act_pre,
            base.power.act_pre
        );
        assert!(
            pra.power.wr_io < base.power.wr_io,
            "PRA write I/O power {} must undercut baseline {}",
            pra.power.wr_io,
            base.power.wr_io
        );
        assert!(pra.power.total() < base.power.total());
    }

    #[test]
    fn pra_activation_histogram_is_mostly_partial_on_gups() {
        let pra = quick(Scheme::Pra);
        let props = pra.dram.granularity_proportions();
        assert!(
            props[0] > 0.2,
            "GUPS writes are single-word: 1/8 share {}",
            props[0]
        );
        assert!(
            props[7] > 0.2,
            "reads stay full-row: full share {}",
            props[7]
        );
    }

    #[test]
    fn dbi_pra_runs_and_uses_dbi() {
        let r = quick(Scheme::DbiPra);
        assert!(!r.timed_out);
        assert_eq!(r.scheme, "DBI+PRA");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = quick(Scheme::Baseline);
        let b = quick(Scheme::Baseline);
        assert_eq!(a.cpu_cycles, b.cpu_cycles);
        assert_eq!(a.dram.activations, b.dram.activations);
        assert!((a.energy.total() - b.energy.total()).abs() < 1e-6);
    }

    #[test]
    fn four_core_mix_runs() {
        let mixes = workloads::all_mixes();
        let r = SimBuilder::new()
            .mix(mixes[0].apps)
            .name("MIX1")
            .scheme(Scheme::Pra)
            .instructions(5_000)
            .warmup_mem_ops(30_000)
            .run();
        assert!(!r.timed_out);
        assert_eq!(r.ipc.len(), 4);
        assert_eq!(r.workload, "MIX1");
    }

    #[test]
    fn prefetcher_raises_hit_rate_on_streaming_workloads() {
        let run = |prefetch: bool| {
            SimBuilder::new()
                .app(workloads::libquantum())
                .scheme(Scheme::Baseline)
                .instructions(20_000)
                .warmup_mem_ops(100_000)
                .prefetch_next_line(prefetch)
                .run()
        };
        let without = run(false);
        let with = run(true);
        assert!(with.cache.prefetches > 0);
        assert_eq!(without.cache.prefetches, 0);
        // Prefetching converts sequential demand misses into L2 hits...
        let l2_hit_rate = |r: &Report| {
            r.cache.l2_hits as f64 / (r.cache.l2_hits + r.cache.l2_misses).max(1) as f64
        };
        assert!(
            l2_hit_rate(&with) > l2_hit_rate(&without),
            "prefetch L2 hit rate {:.3} vs {:.3}",
            l2_hit_rate(&with),
            l2_hit_rate(&without)
        );
        // ...at the cost of extra DRAM reads (the classic coverage/accuracy
        // trade-off; on this bandwidth-bound stream it is not a net win,
        // which is why the feature defaults to off).
        assert!(with.dram.reads_completed > without.dram.reads_completed / 2);
    }

    #[test]
    fn ecc_dimm_costs_power_but_keeps_pra_saving() {
        let run = |scheme: Scheme, ecc: bool| {
            SimBuilder::new()
                .app(workloads::gups())
                .scheme(scheme)
                .ecc_x72(ecc)
                .instructions(15_000)
                .warmup_mem_ops(300_000)
                .run()
        };
        let plain = run(Scheme::Pra, false);
        let ecc = run(Scheme::Pra, true);
        assert!(
            ecc.power.total() > plain.power.total(),
            "the ninth chip is not free"
        );
        // PRA still wins on the ECC DIMM.
        let ecc_base = run(Scheme::Baseline, true);
        assert!(ecc.power.total() < ecc_base.power.total());
        // Timing is identical: ECC costs energy, not cycles.
        assert_eq!(ecc.cpu_cycles, plain.cpu_cycles);
    }

    #[test]
    fn ddr4_system_runs_and_pra_still_saves() {
        let run = |scheme: Scheme| {
            SimBuilder::new()
                .app(workloads::gups())
                .scheme(scheme)
                .dram_generation(DramGeneration::Ddr4)
                .instructions(15_000)
                .warmup_mem_ops(300_000)
                .run()
        };
        let base = run(Scheme::Baseline);
        let pra = run(Scheme::Pra);
        assert!(!base.timed_out && !pra.timed_out);
        assert!(base.dram.writes_completed > 0);
        assert!(
            pra.power.act_pre < base.power.act_pre,
            "PRA activation saving carries over to DDR4: {} vs {}",
            pra.power.act_pre,
            base.power.act_pre
        );
        assert!(pra.power.total() < base.power.total());
    }

    #[test]
    fn trace_driven_run_matches_generator_run() {
        // Record enough GUPS ops to cover warmup + the measured phase, so
        // the trace replay never wraps and both runs see identical streams.
        let mut generator = workloads::WorkloadGen::new(workloads::gups(), 1, 0);
        let trace = workloads::Trace::record(&mut generator, 500_000);
        let by_trace = SimBuilder::new()
            .app_trace("GUPS-trace", trace)
            .scheme(Scheme::Pra)
            .instructions(10_000)
            .warmup_mem_ops(100_000)
            .run();
        let by_generator = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(10_000)
            .warmup_mem_ops(100_000)
            .run();
        assert_eq!(by_trace.cpu_cycles, by_generator.cpu_cycles);
        assert_eq!(by_trace.dram.activations, by_generator.dram.activations);
        assert_eq!(by_trace.workload, "GUPS-trace");
    }

    #[test]
    fn trace_and_metrics_files_reconcile_with_the_report() {
        let dir = std::env::temp_dir();
        let trace = dir.join("pra_sim_builder_trace_test.jsonl");
        let metrics = dir.join("pra_sim_builder_metrics_test.jsonl");
        let r = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(10_000)
            .warmup_mem_ops(100_000)
            .trace_out(&trace)
            .metrics_out(&metrics)
            .metrics_epoch(10_000)
            .run();
        let text = std::fs::read_to_string(&trace).unwrap();
        let (mut acts, mut partial, mut reads) = (0u64, 0u64, 0u64);
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "malformed JSONL: {line}"
            );
            if line.contains("\"kind\":\"ACT\"") {
                acts += 1;
            }
            if line.contains("\"kind\":\"PARTIAL_ACT\"") {
                partial += 1;
            }
            if line.contains("\"kind\":\"RD\"") {
                reads += 1;
            }
        }
        assert_eq!(
            acts + partial,
            r.dram.activations,
            "trace must mirror DramStats"
        );
        assert_eq!(reads, r.dram.reads_completed);
        assert!(partial > 0, "a PRA run on GUPS must partially activate");
        // Epoch snapshots reach both the report and the metrics file, and
        // their deltas sum back to the end-of-run aggregate.
        assert!(!r.metrics.is_empty());
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert_eq!(m.lines().count(), r.metrics.len());
        let delta_sum: u64 = r
            .metrics
            .iter()
            .flat_map(|s| s.counters.iter())
            .filter(|(name, _)| name == "dram.activations")
            .map(|(_, delta)| *delta)
            .sum();
        assert_eq!(delta_sum, r.dram.activations);
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn ring_sink_records_and_counts_drops() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let run = |ring: Option<Rc<RefCell<sim_obs::RingSink>>>| {
            let mut b = SimBuilder::new()
                .app(workloads::gups())
                .scheme(Scheme::Pra)
                .instructions(10_000)
                .warmup_mem_ops(100_000);
            if let Some(r) = ring {
                b = b.trace_ring(r);
            }
            b.run()
        };
        let ring = Rc::new(RefCell::new(sim_obs::RingSink::new(64)));
        let recorded = run(Some(Rc::clone(&ring)));
        let plain = run(None);
        {
            let ring = ring.borrow();
            assert!(ring.total_emitted() > 64, "a PRA run emits many events");
            assert_eq!(
                ring.dropped(),
                ring.total_emitted() - 64,
                "everything beyond capacity is dropped"
            );
            assert_eq!(ring.events().count(), 64);
        }
        assert_eq!(
            recorded.state_digest(),
            plain.state_digest(),
            "the flight recorder must not perturb the simulation"
        );
    }

    #[test]
    fn profiling_does_not_perturb_simulation_state() {
        let base = quick(Scheme::Pra);
        sim_prof::reset();
        sim_prof::enable();
        let profiled = quick(Scheme::Pra);
        sim_prof::disable();
        let report = sim_prof::take_report();
        for span in [
            "sim.warmup",
            "sim.run",
            "cpu.tick",
            "dram.tick",
            "cache.access",
        ] {
            assert!(
                report.spans.iter().any(|s| s.name == span),
                "expected span {span} in {:?}",
                report.spans
            );
        }
        assert_eq!(
            profiled.state_digest(),
            base.state_digest(),
            "profiling on/off must leave simulation state untouched"
        );
    }

    #[test]
    fn liveness_watchdog_surfaces_as_sim_error() {
        // A 20-cycle no-retire bound is tighter than a single read's
        // latency, so any memory-bound run must trip it.
        let err = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Baseline)
            .instructions(5_000)
            .warmup_mem_ops(10_000)
            .liveness_watchdog(20, 0)
            .try_run()
            .unwrap_err();
        match err {
            SimError::Liveness(e) => {
                assert!(e.to_string().contains("no request retired"), "{e}");
            }
            other => panic!("expected SimError::Liveness, got {other}"),
        }
    }

    #[test]
    fn recovery_without_faults_leaves_the_run_bit_identical() {
        let base = quick(Scheme::Pra);
        let recovered = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(20_000)
            .warmup_mem_ops(400_000)
            .recovery(dram_sim::RecoveryConfig::default())
            .run();
        assert_eq!(recovered.recovery, dram_sim::RecoveryCounts::default());
        // The recovery field itself differs only by being present in both
        // reports (all zero), so the digests must match exactly.
        assert_eq!(base.state_digest(), recovered.state_digest());
    }

    #[test]
    fn recovery_under_faults_engages_and_stays_deterministic() {
        let plan = FaultPlan {
            seed: 5,
            command_drop_rate: 0.05,
            mask_corrupt_rate: 0.2,
            persistent_rate: 0.1,
            transient_burst_len: 2,
            ..FaultPlan::disabled()
        };
        let builder = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(20_000)
            .warmup_mem_ops(400_000)
            .faults(plan)
            .recovery(dram_sim::RecoveryConfig::default());
        let report = builder.try_run_verified().expect("deterministic");
        assert!(report.recovery.engaged(), "faults must raise alerts");
        assert!(report.recovery.recovered > 0, "transients must recover");
        assert_eq!(
            report.recovery.retries + report.recovery.exhausted,
            report.recovery.alerts,
            "every alert is replayed or exhausted"
        );
        assert!(!report.timed_out);
    }

    #[test]
    fn power_telemetry_toggle_preserves_state_digest() {
        // Without epochs nothing is ever published, so the *full* digest —
        // stats, energy, cache, metrics — must match exactly.
        let run = |telemetry: bool, epoch: u64| {
            let mut b = SimBuilder::new()
                .app(workloads::gups())
                .scheme(Scheme::Pra)
                .instructions(15_000)
                .warmup_mem_ops(200_000)
                .power_telemetry(telemetry);
            if epoch > 0 {
                b = b.metrics_epoch(epoch);
            }
            b.run()
        };
        let on = run(true, 0);
        let off = run(false, 0);
        assert_eq!(
            on.state_digest(),
            off.state_digest(),
            "telemetry must not perturb the simulation"
        );
        // With epochs on, telemetry adds `energy.*`/`power.*` rows to the
        // snapshots; everything *outside* the metrics field still digests
        // identically.
        let on = run(true, 10_000);
        let off = run(false, 10_000);
        let strip = |r: &Report| {
            let mut r = r.clone();
            r.metrics.clear();
            r.state_digest()
        };
        assert_eq!(strip(&on), strip(&off));
        let has_power = |r: &Report| {
            r.metrics
                .iter()
                .any(|s| s.counters.iter().any(|(n, _)| n.starts_with("energy.")))
        };
        assert!(has_power(&on), "telemetry on must publish energy counters");
        assert!(!has_power(&off), "telemetry off must publish none");
    }

    #[test]
    fn power_streaming_counters_match_post_hoc_energy() {
        // Satellite: streaming `energy.*` epoch deltas sum back to the
        // post-hoc EnergyBreakdown field-by-field, on the paper 1-channel
        // config and on MIX1 (run release CI under PRA_VERIFY_PROTOCOL=1).
        let check = |report: &Report| {
            let streamed = |name: &str| -> u64 {
                report
                    .metrics
                    .iter()
                    .flat_map(|s| s.counters.iter())
                    .filter(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .sum()
            };
            let e = &report.energy;
            let fields = [
                ("energy.act_pre_pj", e.act_pre),
                ("energy.rd_pj", e.rd),
                ("energy.wr_pj", e.wr),
                ("energy.rd_io_pj", e.rd_io),
                ("energy.wr_io_pj", e.wr_io),
                ("energy.bg_pj", e.bg),
                ("energy.refresh_pj", e.refresh),
                ("energy.total_pj", e.total()),
            ];
            for (name, exact) in fields {
                assert_eq!(
                    streamed(name),
                    exact.round() as u64,
                    "{name} must reconcile with the post-hoc breakdown ({})",
                    report.workload
                );
            }
        };
        let paper = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(15_000)
            .warmup_mem_ops(200_000)
            .metrics_epoch(10_000)
            .run();
        check(&paper);
        let mix1 = SimBuilder::new()
            .mix(workloads::all_mixes()[0].apps)
            .name("MIX1")
            .scheme(Scheme::Pra)
            .instructions(4_000)
            .warmup_mem_ops(30_000)
            .metrics_epoch(10_000)
            .run();
        check(&mix1);
    }

    #[test]
    fn power_residency_counters_cover_every_rank() {
        let r = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Baseline)
            .instructions(10_000)
            .warmup_mem_ops(100_000)
            .metrics_epoch(20_000)
            .run();
        let ranks = 4; // paper baseline: 2 channels x 2 ranks
        for rank in 0..ranks {
            for state in ["act_stby", "pre_stby", "pdn"] {
                let name = format!("power.residency.r{rank}.{state}");
                let total: u64 = r
                    .metrics
                    .iter()
                    .flat_map(|s| s.counters.iter())
                    .filter(|(n, _)| *n == name)
                    .map(|&(_, v)| v)
                    .sum();
                if state == "act_stby" {
                    assert!(total > 0, "{name} must accrue cycles");
                }
            }
        }
        // Residency across all states and ranks conserves total cycles:
        // mem cycles x ranks (runtime_ns / tCK, DDR3-1600 tCK = 1.25 ns).
        let all_states: u64 = r
            .metrics
            .iter()
            .flat_map(|s| s.counters.iter())
            .filter(|(n, _)| n.starts_with("power.residency.") && !n.ends_with(".bank_open"))
            .map(|&(_, v)| v)
            .sum();
        let cycles = (r.runtime_ns / 1.25).round() as u64;
        assert_eq!(all_states, cycles * ranks);
    }

    fn snap_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pra-snap-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_restore_digest_identity_across_schemes_faults_recovery() {
        // The correctness contract of the checkpoint subsystem: a run
        // checkpointed at cycle C and restored from that snapshot finishes
        // with a state digest bit-identical to the uninterrupted run —
        // across every scheme x fault-plan x recovery combination.
        let chaos = FaultPlan {
            seed: 0xC0FFEE,
            mask_corrupt_rate: 0.05,
            command_drop_rate: 0.02,
            command_stretch_rate: 0.05,
            command_stretch_cycles: 2,
            ..FaultPlan::disabled()
        };
        // Without the recovery pipeline, dropped commands would strand
        // requests; corrupt masks alone degrade but always complete.
        let mild = FaultPlan {
            seed: 0xC0FFEE,
            mask_corrupt_rate: 0.05,
            ..FaultPlan::disabled()
        };
        for scheme in [Scheme::Baseline, Scheme::Pra, Scheme::DbiPra] {
            for faulty in [false, true] {
                for recovery in [false, true] {
                    let tag = format!("{scheme:?}-faults{faulty}-rec{recovery}");
                    let dir = snap_dir(&tag);
                    let build = || {
                        let mut b = SimBuilder::new()
                            .app(workloads::gups())
                            .scheme(scheme)
                            .instructions(8_000)
                            .warmup_mem_ops(100_000);
                        if faulty {
                            b = b.faults(if recovery { chaos } else { mild });
                        }
                        if recovery {
                            b = b.recovery(dram_sim::RecoveryConfig::default());
                        }
                        b
                    };
                    let reference = build().try_run().unwrap();
                    let (checkpointed, snap) = build()
                        .checkpoint_every(2_000)
                        .checkpoint_dir(&dir)
                        .try_run_snap()
                        .unwrap();
                    assert!(
                        snap.checkpoints_written > 0,
                        "{tag}: expected at least one checkpoint"
                    );
                    assert_eq!(snap.write_errors, 0, "{tag}");
                    assert_eq!(
                        reference.state_digest(),
                        checkpointed.state_digest(),
                        "{tag}: writing checkpoints perturbed the run"
                    );
                    // Resume from the oldest snapshot — the longest replay
                    // span, so any drift has maximal room to show.
                    let mut files: Vec<_> = std::fs::read_dir(&dir)
                        .unwrap()
                        .map(|e| e.unwrap().path())
                        .collect();
                    files.sort();
                    let (resumed, rsnap) = build().restore(&files[0]).try_run_snap().unwrap();
                    assert!(rsnap.restored_from_cycle.unwrap() > 0, "{tag}");
                    assert_eq!(
                        reference.state_digest(),
                        resumed.state_digest(),
                        "{tag}: restored run diverged from the uninterrupted one"
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }

    #[test]
    fn torn_snapshot_is_rejected_and_older_one_restores() {
        let dir = snap_dir("torn");
        let builder = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(8_000)
            .warmup_mem_ops(100_000);
        let reference = builder.clone().try_run().unwrap();
        let (_, snap) = builder
            .clone()
            .checkpoint_every(1_000)
            .checkpoint_dir(&dir)
            .try_run_snap()
            .unwrap();
        assert!(snap.checkpoints_written >= 2, "need two checkpoints");
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let newest = files.last().unwrap().clone();
        // Truncate the newest snapshot, simulating a kill mid-write that
        // beat the atomic rename discipline (e.g. a torn copy).
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        // A direct restore of the torn file fails loudly...
        let err = builder.clone().restore(&newest).try_run().unwrap_err();
        assert!(
            matches!(err, SimError::Snapshot { .. }),
            "expected SimError::Snapshot, got {err}"
        );
        // ...while the discovery path skips it and falls back to the
        // next-older checkpoint, which restores to the identical digest.
        let found = sim_snap::latest_valid(&dir, Some(builder.config_digest()))
            .unwrap()
            .expect("an older valid checkpoint must remain");
        assert_eq!(found.skipped, 1, "exactly the torn file is skipped");
        assert_ne!(found.path, newest);
        let resumed = builder.clone().restore(&found.path).try_run().unwrap();
        assert_eq!(reference.state_digest(), resumed.state_digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let dir = snap_dir("mismatch");
        let pra = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Pra)
            .instructions(6_000)
            .warmup_mem_ops(60_000);
        let (_, snap) = pra
            .clone()
            .checkpoint_every(500)
            .checkpoint_dir(&dir)
            .try_run_snap()
            .unwrap();
        assert!(snap.checkpoints_written > 0);
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .next()
            .unwrap();
        // Same workload, different scheme: the config digest must refuse.
        let err = SimBuilder::new()
            .app(workloads::gups())
            .scheme(Scheme::Baseline)
            .instructions(6_000)
            .warmup_mem_ops(60_000)
            .restore(&file)
            .try_run()
            .unwrap_err();
        match err {
            SimError::Snapshot { source, .. } => {
                assert!(
                    matches!(source, sim_snap::SnapError::ConfigDigest { .. }),
                    "expected a config-digest rejection, got {source}"
                );
            }
            other => panic!("expected SimError::Snapshot, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_configured_checkpointing_is_rejected() {
        let base = || SimBuilder::new().app(workloads::gups()).instructions(1_000);
        let err = base().checkpoint_every(2_000).try_run().unwrap_err();
        assert!(
            matches!(&err, SimError::CheckpointConfig(m) if m.contains("checkpoint_dir")),
            "{err}"
        );
        let err = base()
            .checkpoint_dir(std::env::temp_dir())
            .try_run()
            .unwrap_err();
        assert!(
            matches!(&err, SimError::CheckpointConfig(m) if m.contains("checkpoint_every")),
            "{err}"
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = SimBuilder::new().app_trace("empty", workloads::Trace::new());
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_builder_rejected() {
        let _ = SimBuilder::new().run();
    }
}
