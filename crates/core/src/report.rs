//! The result record of one full-system run.

use cache_sim::HierarchyStats;
use dram_power::{EnergyBreakdown, PowerBreakdown};
use dram_sim::{DramStats, RecoveryCounts};
use sim_fault::FaultCounts;
use sim_obs::EpochSnapshot;

/// Everything one simulation run produces: performance, DRAM power/energy
/// and the statistics behind each of the paper's figures.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workload name.
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// Per-core IPC.
    pub ipc: Vec<f64>,
    /// CPU cycles until the last core finished.
    pub cpu_cycles: u64,
    /// Simulated time in nanoseconds (memory clock domain).
    pub runtime_ns: f64,
    /// DRAM energy breakdown (pJ).
    pub energy: EnergyBreakdown,
    /// Average DRAM power breakdown (mW).
    pub power: PowerBreakdown,
    /// DRAM statistics (hit rates, false hits, granularity histogram...).
    pub dram: DramStats,
    /// Cache statistics (Figure 3 histogram, DBI counters...).
    pub cache: HierarchyStats,
    /// Epoch metric snapshots (empty unless the run enabled
    /// `SimBuilder::metrics_epoch`); deltas per epoch, summing to the
    /// end-of-run aggregates.
    pub metrics: Vec<EpochSnapshot>,
    /// Injected/detected/degraded fault counters, merged across the DRAM
    /// and cache injectors. All zero unless the run attached a
    /// [`sim_fault::FaultPlan`].
    pub faults: FaultCounts,
    /// Recovery-pipeline counters (alerts, replays, recoveries,
    /// exhaustions, row demotions/promotions), summed across channels.
    /// All zero unless the run enabled [`crate::SimBuilder::recovery`]
    /// *and* a fault was detected.
    pub recovery: RecoveryCounts,
    /// `true` if the run hit its cycle cap before completing.
    pub timed_out: bool,
}

impl Report {
    /// Order-sensitive digest of every statistic in the report (FNV-1a 64
    /// over the `Debug` rendering). Two runs of the same configuration and
    /// seed must produce identical digests; `pra run --verify-determinism`
    /// compares them.
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    /// Total DRAM energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Energy-delay product (mJ x ns); meaningful as a ratio against a
    /// baseline report.
    pub fn edp(&self) -> f64 {
        self.energy_mj() * self.runtime_ns
    }

    /// Sum of per-core IPCs (throughput proxy).
    pub fn ipc_sum(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// Weighted speedup against per-core alone-IPCs (Equation 3).
    ///
    /// # Errors
    ///
    /// Returns [`cpu_sim::SpeedupError`] if `alone_ipc` does not match the
    /// core count or contains a non-positive entry.
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> Result<f64, cpu_sim::SpeedupError> {
        cpu_sim::weighted_speedup(&self.ipc, alone_ipc)
    }

    /// DRAM read/write traffic split as fractions of all requests
    /// (Table 1's "Memory traffic" columns).
    pub fn traffic_split(&self) -> (f64, f64) {
        let reads = self.dram.read.total() as f64;
        let writes = self.dram.write.total() as f64;
        let total = reads + writes;
        if total == 0.0 {
            (0.0, 0.0)
        } else {
            (reads / total, writes / total)
        }
    }

    /// Read/write split of row activations (Table 1's "Row activation"
    /// columns).
    pub fn activation_split(&self) -> (f64, f64) {
        let w = self.dram.write_activation_share();
        (1.0 - w, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Report {
        let mut dram = DramStats::default();
        dram.read.hits = 30;
        dram.read.misses = 70;
        dram.write.hits = 10;
        dram.write.misses = 40;
        dram.record_activation(16, true);
        dram.record_activation(2, false);
        Report {
            workload: "t".into(),
            scheme: "baseline".into(),
            ipc: vec![1.0, 2.0],
            cpu_cycles: 100,
            runtime_ns: 50.0,
            energy: EnergyBreakdown {
                act_pre: 1e9,
                ..Default::default()
            },
            power: PowerBreakdown::default(),
            dram,
            cache: HierarchyStats::default(),
            metrics: Vec::new(),
            faults: FaultCounts::default(),
            recovery: RecoveryCounts::default(),
            timed_out: false,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy();
        assert!((r.energy_mj() - 1.0).abs() < 1e-12);
        assert!((r.edp() - 50.0).abs() < 1e-9);
        assert!((r.ipc_sum() - 3.0).abs() < 1e-12);
        let (rd, wr) = r.traffic_split();
        assert!((rd - 100.0 / 150.0).abs() < 1e-12);
        assert!((wr - 50.0 / 150.0).abs() < 1e-12);
        let (ra, wa) = r.activation_split();
        assert!((ra - 0.5).abs() < 1e-12 && (wa - 0.5).abs() < 1e-12);
    }

    #[test]
    fn state_digest_is_stable_and_sensitive() {
        let a = dummy();
        let b = dummy();
        assert_eq!(a.state_digest(), b.state_digest());
        let mut c = dummy();
        c.cpu_cycles += 1;
        assert_ne!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn ws_uses_eq3() {
        let r = dummy();
        let ws = r.weighted_speedup(&[2.0, 2.0]).unwrap();
        assert!((ws - 1.5).abs() < 1e-12);
        assert!(
            r.weighted_speedup(&[2.0]).is_err(),
            "length mismatch is an error"
        );
    }
}
