//! The evaluated schemes, including the Section 5.2.3 combinations.

use dram_sim::SchemeBehavior;

/// Every scheme the paper evaluates, plus the combinations of its case
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Conventional DRAM.
    Baseline,
    /// Fine-grained activation at half-row granularity (halved prefetch
    /// width, doubled burst occupancy).
    Fga,
    /// Half-DRAM-1Row: half-row activations at full bandwidth.
    HalfDram,
    /// Partial Row Activation (this paper).
    Pra,
    /// Half-DRAM with PRA latches and wordline gates on top (Section 5.2.3).
    HalfDramPra,
    /// Conventional DRAM with a Dirty-Block Index in the LLC.
    Dbi,
    /// DBI plus PRA (Section 5.2.3).
    DbiPra,
}

impl Scheme {
    /// The DRAM-side behaviour descriptor.
    pub fn behavior(self) -> SchemeBehavior {
        match self {
            Scheme::Baseline | Scheme::Dbi => SchemeBehavior::baseline(),
            Scheme::Fga => SchemeBehavior::fga_half(),
            Scheme::HalfDram => SchemeBehavior::half_dram(),
            Scheme::Pra | Scheme::DbiPra => SchemeBehavior::pra(),
            Scheme::HalfDramPra => SchemeBehavior::half_dram_pra(),
        }
    }

    /// Whether the LLC runs a Dirty-Block Index.
    pub fn uses_dbi(self) -> bool {
        matches!(self, Scheme::Dbi | Scheme::DbiPra)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Fga => "FGA",
            Scheme::HalfDram => "Half-DRAM",
            Scheme::Pra => "PRA",
            Scheme::HalfDramPra => "Half-DRAM+PRA",
            Scheme::Dbi => "DBI",
            Scheme::DbiPra => "DBI+PRA",
        }
    }

    /// The Figure 12/13 comparison set.
    pub fn main_comparison() -> [Scheme; 4] {
        [Scheme::Baseline, Scheme::Fga, Scheme::HalfDram, Scheme::Pra]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaviors_match_names() {
        for s in [
            Scheme::Baseline,
            Scheme::Fga,
            Scheme::HalfDram,
            Scheme::Pra,
            Scheme::HalfDramPra,
        ] {
            assert_eq!(s.behavior().name, s.name());
        }
        // DBI variants reuse the underlying DRAM behaviour.
        assert_eq!(Scheme::Dbi.behavior().name, "baseline");
        assert_eq!(Scheme::DbiPra.behavior().name, "PRA");
    }

    #[test]
    fn dbi_flags() {
        assert!(Scheme::Dbi.uses_dbi());
        assert!(Scheme::DbiPra.uses_dbi());
        assert!(!Scheme::Pra.uses_dbi());
        assert!(!Scheme::Baseline.uses_dbi());
    }

    #[test]
    fn comparison_set_order() {
        let names: Vec<&str> = Scheme::main_comparison().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["baseline", "FGA", "Half-DRAM", "PRA"]);
    }
}
