//! One function per table/figure of the paper's evaluation. Each returns
//! typed rows; the `bench` crate's binaries print them in the paper's
//! layout, and EXPERIMENTS.md records the comparison against the published
//! numbers.

use std::collections::HashMap;

use dram_power::{
    ActivationEnergyModel, DevicePowerTimings, Figure9Point, IddParams, PowerBreakdown, PowerParams,
};
use dram_sim::PagePolicy;
use workloads::BenchProfile;

use crate::report::Report;
use crate::scheme::Scheme;
use crate::system::SimBuilder;

/// Run-length and seed knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Instructions per core per run. The paper uses 200M; synthetic
    /// workloads reach steady state far earlier, so defaults are small
    /// enough for the whole suite to regenerate in minutes.
    pub instructions: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Cache warmup length override (memory ops per core); `None` uses the
    /// [`SimBuilder`] default of roughly three LLC turnovers.
    pub warmup: Option<u64>,
}

impl ExperimentConfig {
    /// Quick configuration for tests: short runs, shallow warmup.
    pub const fn quick() -> Self {
        ExperimentConfig {
            instructions: 20_000,
            seed: 1,
            warmup: Some(40_000),
        }
    }

    /// Default figure-quality configuration.
    pub const fn figure() -> Self {
        ExperimentConfig {
            instructions: 300_000,
            seed: 1,
            warmup: None,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::figure()
    }
}

/// Runs experiments, memoising the alone-IPC runs that weighted speedup
/// normalisation needs.
#[derive(Debug, Default)]
pub struct Runner {
    alone_cache: HashMap<(String, bool), f64>,
}

impl Runner {
    /// A fresh runner.
    pub fn new() -> Self {
        Runner::default()
    }

    /// IPC of `profile` running alone on the baseline scheme under
    /// `policy` (memoised). This is the Eq. 3 denominator, shared across
    /// schemes as the common normalisation (see DESIGN.md).
    pub fn alone_ipc(
        &mut self,
        profile: &BenchProfile,
        policy: PagePolicy,
        cfg: &ExperimentConfig,
    ) -> f64 {
        let key = (
            profile.name.to_string(),
            matches!(policy, PagePolicy::RestrictedClosePage),
        );
        if let Some(&ipc) = self.alone_cache.get(&key) {
            return ipc;
        }
        let mut builder = SimBuilder::new()
            .app(*profile)
            .scheme(Scheme::Baseline)
            .policy(policy)
            .instructions(cfg.instructions)
            .seed(cfg.seed);
        if let Some(w) = cfg.warmup {
            builder = builder.warmup_mem_ops(w);
        }
        let report = builder.run();
        let ipc = report.ipc[0];
        self.alone_cache.insert(key, ipc);
        ipc
    }

    /// Runs a named 4-app workload under a scheme/policy.
    pub fn run_workload(
        &mut self,
        name: &str,
        apps: &[BenchProfile; 4],
        scheme: Scheme,
        policy: PagePolicy,
        cfg: &ExperimentConfig,
    ) -> Report {
        let mut builder = SimBuilder::new()
            .mix(*apps)
            .name(name)
            .scheme(scheme)
            .policy(policy)
            .instructions(cfg.instructions)
            .seed(cfg.seed);
        if let Some(w) = cfg.warmup {
            builder = builder.warmup_mem_ops(w);
        }
        builder.run()
    }

    /// Weighted speedup of a 4-core report (Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if the report does not come from a 4-core run matching
    /// `apps`, or an alone run produced a zero IPC (both are driver bugs:
    /// the runner itself produced the inputs).
    pub fn weighted_speedup(
        &mut self,
        report: &Report,
        apps: &[BenchProfile; 4],
        policy: PagePolicy,
        cfg: &ExperimentConfig,
    ) -> f64 {
        let alone: Vec<f64> = apps
            .iter()
            .map(|a| self.alone_ipc(a, policy, cfg))
            .collect();
        report
            .weighted_speedup(&alone)
            // sim-lint: allow(no-panic-hot-path): the alone vector is built one entry per app of this report two lines up, so the lengths match by construction
            .expect("alone-IPC runs were produced for this very report")
    }
}

// ---------------------------------------------------------------------------
// Motivation: Table 1, Figure 2, Figure 3 (single-core baseline runs).
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Row-buffer hit rates (read, write), 0..=1.
    pub rb_hit: (f64, f64),
    /// Memory traffic split (read, write), 0..=1.
    pub traffic: (f64, f64),
    /// Row-activation split (read, write), 0..=1.
    pub activations: (f64, f64),
}

/// Runs the eight benchmarks single-core on the baseline (the paper's
/// motivational setup) and returns one [`Report`] each.
pub fn motivation_runs(cfg: &ExperimentConfig) -> Vec<Report> {
    workloads::all_benchmarks()
        .into_iter()
        .map(|b| {
            let mut builder = SimBuilder::new()
                .app(b)
                .name(b.name)
                .scheme(Scheme::Baseline)
                .policy(PagePolicy::RelaxedClosePage)
                .instructions(cfg.instructions)
                .seed(cfg.seed);
            if let Some(w) = cfg.warmup {
                builder = builder.warmup_mem_ops(w);
            }
            builder.run()
        })
        .collect()
}

/// Table 1: per-benchmark memory characteristics.
pub fn table1(cfg: &ExperimentConfig) -> Vec<Table1Row> {
    motivation_runs(cfg)
        .into_iter()
        .map(|r| table1_row(&r))
        .collect()
}

/// Derives a Table 1 row from any report.
pub fn table1_row(report: &Report) -> Table1Row {
    Table1Row {
        name: report.workload.clone(),
        rb_hit: (report.dram.read.hit_rate(), report.dram.write.hit_rate()),
        traffic: report.traffic_split(),
        activations: report.activation_split(),
    }
}

/// Figure 2: baseline DRAM power breakdown per benchmark.
pub fn fig2(cfg: &ExperimentConfig) -> Vec<(String, PowerBreakdown)> {
    motivation_runs(cfg)
        .into_iter()
        .map(|r| (r.workload.clone(), r.power))
        .collect()
}

/// Figure 3: dirty-word distribution of evicted LLC lines per benchmark.
pub fn fig3(cfg: &ExperimentConfig) -> Vec<(String, [f64; 8])> {
    motivation_runs(cfg)
        .into_iter()
        .map(|r| (r.workload.clone(), r.cache.dirty_word_proportions()))
        .collect()
}

// ---------------------------------------------------------------------------
// Power model: Table 2, Figure 9, Table 3 (static, no simulation).
// ---------------------------------------------------------------------------

/// Table 2: the activation-energy and die-area model.
pub fn table2() -> (ActivationEnergyModel, dram_power::overheads::DieArea) {
    (
        ActivationEnergyModel::paper_table2(),
        dram_power::overheads::DieArea::paper_table2(),
    )
}

/// Figure 9: activation energy versus MATs activated.
pub fn fig9() -> Vec<Figure9Point> {
    ActivationEnergyModel::paper_table2().figure9_series()
}

/// Table 3's power rows: the published per-granularity ACT powers, the
/// Eq. (1)/(2)-derived full-row power, and the CACTI-projected alternative.
pub fn table3() -> Table3Data {
    let params = PowerParams::paper_table3();
    let idd = IddParams::calibrated_to_paper();
    let t = DevicePowerTimings::ddr3_1600();
    Table3Data {
        published_act_mw: params.act_by_granularity_mw,
        eq12_full_row_mw: idd.p_act_mw(&t),
        cacti_projected_mw: ActivationEnergyModel::paper_table2()
            .project_onto_p_act(params.act_power_mw(8)),
        params,
    }
}

/// The data behind Table 3.
#[derive(Debug, Clone)]
pub struct Table3Data {
    /// Published ACT power by granularity (1/8 .. full), mW.
    pub published_act_mw: [f64; 8],
    /// Full-row ACT power derived from Equations (1)/(2), mW.
    pub eq12_full_row_mw: f64,
    /// The CACTI-scaling alternative projection, mW.
    pub cacti_projected_mw: [f64; 8],
    /// The full Table 3 parameter set.
    pub params: PowerParams,
}

// ---------------------------------------------------------------------------
// Main evaluation: Figures 10-15 (14 four-core workloads).
// ---------------------------------------------------------------------------

/// One row of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Workload name.
    pub name: String,
    /// Hit rates with false hits counted as misses (read, write, total).
    pub hit_rates: (f64, f64, f64),
    /// False-hit rates among all requests (read, write).
    pub false_rates: (f64, f64),
    /// What the hit rates would have been conventionally (read, write).
    pub conventional: (f64, f64),
}

/// Figure 10: PRA's impact on row-buffer hit rates, across the 14
/// workloads under the relaxed close-page policy.
pub fn fig10(cfg: &ExperimentConfig) -> Vec<Fig10Row> {
    let mut runner = Runner::new();
    workloads::all_workloads()
        .into_iter()
        .map(|(name, apps)| {
            let r =
                runner.run_workload(&name, &apps, Scheme::Pra, PagePolicy::RelaxedClosePage, cfg);
            let read = &r.dram.read;
            let write = &r.dram.write;
            Fig10Row {
                name,
                hit_rates: (read.hit_rate(), write.hit_rate(), r.dram.total_hit_rate()),
                false_rates: (
                    read.false_hits as f64 / read.total().max(1) as f64,
                    write.false_hits as f64 / write.total().max(1) as f64,
                ),
                conventional: (read.conventional_hit_rate(), write.conventional_hit_rate()),
            }
        })
        .collect()
}

/// Figure 11: PRA's activation-granularity proportions per workload under
/// the given policy, plus the all-workload average as a final `"average"`
/// row.
pub fn fig11(cfg: &ExperimentConfig, policy: PagePolicy) -> Vec<(String, [f64; 8])> {
    let mut runner = Runner::new();
    let mut rows: Vec<(String, [f64; 8])> = workloads::all_workloads()
        .into_iter()
        .map(|(name, apps)| {
            let r = runner.run_workload(&name, &apps, Scheme::Pra, policy, cfg);
            (name, r.dram.granularity_proportions())
        })
        .collect();
    let mut avg = [0.0; 8];
    for (_, p) in &rows {
        for (a, v) in avg.iter_mut().zip(p) {
            *a += v / rows.len() as f64;
        }
    }
    rows.push(("average".to_string(), avg));
    rows
}

/// One workload x scheme data point of the main comparison
/// (Figures 12-15), normalised to the same workload's baseline run.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Workload name.
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// Row-activation power relative to baseline (Fig. 12a).
    pub norm_act_power: f64,
    /// I/O power relative to baseline (Fig. 12b).
    pub norm_io_power: f64,
    /// Total DRAM power relative to baseline (Fig. 12c).
    pub norm_total_power: f64,
    /// Weighted speedup relative to baseline (Fig. 13a).
    pub norm_performance: f64,
    /// DRAM energy relative to baseline (Fig. 13b).
    pub norm_energy: f64,
    /// Energy-delay product relative to baseline (Fig. 13c).
    pub norm_edp: f64,
    /// The underlying report.
    pub report: Report,
}

/// Runs a scheme set over all 14 workloads under `policy`, normalising
/// each scheme's metrics to the baseline run of the same workload. The
/// baseline itself is included as rows with all-1.0 normalised values.
pub fn scheme_comparison(
    cfg: &ExperimentConfig,
    schemes: &[Scheme],
    policy: PagePolicy,
) -> Vec<ComparisonRow> {
    scheme_comparison_filtered(cfg, schemes, policy, |_| true)
}

/// [`scheme_comparison`] over the subset of the 14 workloads whose name the
/// filter accepts — useful for quick looks and fast tests.
pub fn scheme_comparison_filtered(
    cfg: &ExperimentConfig,
    schemes: &[Scheme],
    policy: PagePolicy,
    filter: impl Fn(&str) -> bool,
) -> Vec<ComparisonRow> {
    let mut runner = Runner::new();
    let mut rows = Vec::new();
    for (name, apps) in workloads::all_workloads()
        .into_iter()
        .filter(|(n, _)| filter(n))
    {
        let base = runner.run_workload(&name, &apps, Scheme::Baseline, policy, cfg);
        let base_ws = runner.weighted_speedup(&base, &apps, policy, cfg);
        for &scheme in schemes {
            let r = if scheme == Scheme::Baseline {
                base.clone()
            } else {
                runner.run_workload(&name, &apps, scheme, policy, cfg)
            };
            let ws = runner.weighted_speedup(&r, &apps, policy, cfg);
            rows.push(ComparisonRow {
                workload: name.clone(),
                scheme: scheme.name().to_string(),
                norm_act_power: ratio(r.power.act_pre, base.power.act_pre),
                norm_io_power: ratio(r.power.io(), base.power.io()),
                norm_total_power: ratio(r.power.total(), base.power.total()),
                norm_performance: ratio(ws, base_ws),
                norm_energy: ratio(r.energy.total(), base.energy.total()),
                norm_edp: ratio(r.edp(), base.edp()),
                report: r,
            });
        }
    }
    rows
}

/// Figures 12 and 13: FGA vs Half-DRAM vs PRA under relaxed close-page.
pub fn fig12_13(cfg: &ExperimentConfig) -> Vec<ComparisonRow> {
    scheme_comparison(
        cfg,
        &[Scheme::Fga, Scheme::HalfDram, Scheme::Pra],
        PagePolicy::RelaxedClosePage,
    )
}

/// Figure 14: Half-DRAM vs PRA vs the combined scheme under restricted
/// close-page (the paper reports the 14-workload mean).
pub fn fig14(cfg: &ExperimentConfig) -> Vec<ComparisonRow> {
    scheme_comparison(
        cfg,
        &[Scheme::HalfDram, Scheme::Pra, Scheme::HalfDramPra],
        PagePolicy::RestrictedClosePage,
    )
}

/// Figure 15: DBI vs PRA vs the combined scheme under relaxed close-page.
pub fn fig15(cfg: &ExperimentConfig) -> Vec<ComparisonRow> {
    scheme_comparison(
        cfg,
        &[Scheme::Dbi, Scheme::Pra, Scheme::DbiPra],
        PagePolicy::RelaxedClosePage,
    )
}

/// Means of each normalised metric over all workloads, per scheme, in
/// first-appearance order — the aggregation Figures 12-15 report as
/// `average`/`MEAN`.
pub fn mean_by_scheme(rows: &[ComparisonRow]) -> Vec<(String, [f64; 6])> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: HashMap<String, ([f64; 6], u32)> = HashMap::new();
    for row in rows {
        if !sums.contains_key(&row.scheme) {
            order.push(row.scheme.clone());
        }
        let entry = sums.entry(row.scheme.clone()).or_insert(([0.0; 6], 0));
        let vals = [
            row.norm_act_power,
            row.norm_io_power,
            row.norm_total_power,
            row.norm_performance,
            row.norm_energy,
            row.norm_edp,
        ];
        for (s, v) in entry.0.iter_mut().zip(vals) {
            *s += v;
        }
        entry.1 += 1;
    }
    order
        .into_iter()
        .map(|scheme| {
            let (sum, n) = sums[&scheme];
            (scheme, sum.map(|s| s / f64::from(n)))
        })
        .collect()
}

/// Serialises comparison rows to CSV (header + one row per
/// workload x scheme), for plotting outside Rust.
pub fn comparison_to_csv(rows: &[ComparisonRow]) -> String {
    let mut out = String::from(
        "workload,scheme,norm_act_power,norm_io_power,norm_total_power,         norm_performance,norm_energy,norm_edp,total_power_mw,energy_mj,         runtime_ns,read_hit_rate,write_hit_rate,false_hits\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{:.6},{:.1},{:.6},{:.6},{}\n",
            r.workload,
            r.scheme,
            r.norm_act_power,
            r.norm_io_power,
            r.norm_total_power,
            r.norm_performance,
            r.norm_energy,
            r.norm_edp,
            r.report.power.total(),
            r.report.energy_mj(),
            r.report.runtime_ns,
            r.report.dram.read.hit_rate(),
            r.report.dram.write.hit_rate(),
            r.report.dram.read.false_hits + r.report.dram.write.false_hits,
        ));
    }
    out
}

fn ratio(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        1.0
    } else {
        value / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            instructions: 4_000,
            seed: 1,
            warmup: Some(20_000),
        }
    }

    #[test]
    fn table1_has_eight_rows_with_sane_splits() {
        let rows = table1(&tiny());
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                (row.traffic.0 + row.traffic.1 - 1.0).abs() < 1e-9,
                "{}",
                row.name
            );
            assert!((row.activations.0 + row.activations.1 - 1.0).abs() < 1e-9);
            assert!(row.rb_hit.0 >= 0.0 && row.rb_hit.0 <= 1.0);
        }
    }

    #[test]
    fn fig9_and_table3_are_static_and_consistent() {
        let pts = fig9();
        assert_eq!(pts.len(), 8);
        let t3 = table3();
        assert!((t3.eq12_full_row_mw - 22.2).abs() < 0.1);
        assert_eq!(t3.published_act_mw[7], 22.2);
        assert!((t3.cacti_projected_mw[7] - 22.2).abs() < 1e-9);
    }

    #[test]
    fn mean_by_scheme_averages() {
        let cfg = tiny();
        let mut runner = Runner::new();
        let apps = [workloads::gups(); 4];
        let base = runner.run_workload(
            "g",
            &apps,
            Scheme::Baseline,
            PagePolicy::RelaxedClosePage,
            &cfg,
        );
        let row = |scheme: &str, v: f64| ComparisonRow {
            workload: "w".into(),
            scheme: scheme.into(),
            norm_act_power: v,
            norm_io_power: v,
            norm_total_power: v,
            norm_performance: v,
            norm_energy: v,
            norm_edp: v,
            report: base.clone(),
        };
        let rows = vec![row("PRA", 0.5), row("PRA", 1.5), row("FGA", 2.0)];
        let means = mean_by_scheme(&rows);
        assert_eq!(means.len(), 2);
        assert_eq!(means[0].0, "PRA");
        assert!((means[0].1[0] - 1.0).abs() < 1e-12);
        assert!((means[1].1[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn filtered_comparison_normalises_to_baseline() {
        let cfg = tiny();
        let rows = scheme_comparison_filtered(
            &cfg,
            &[Scheme::Baseline, Scheme::Pra],
            PagePolicy::RelaxedClosePage,
            |name| name == "GUPS",
        );
        assert_eq!(rows.len(), 2, "one workload x two schemes");
        let base = rows.iter().find(|r| r.scheme == "baseline").unwrap();
        assert!((base.norm_total_power - 1.0).abs() < 1e-12);
        assert!((base.norm_performance - 1.0).abs() < 1e-12);
        let pra = rows.iter().find(|r| r.scheme == "PRA").unwrap();
        assert!(pra.norm_total_power < 1.0, "PRA saves power on GUPS");
        assert!(pra.norm_act_power < 1.0);
        assert!(pra.report.dram.activations > 0);
    }

    #[test]
    fn fig3_distributions_are_probability_vectors() {
        let rows = fig3(&tiny());
        assert_eq!(rows.len(), 8);
        for (name, dist) in rows {
            let sum: f64 = dist.iter().sum();
            assert!(
                sum == 0.0 || (sum - 1.0).abs() < 1e-9,
                "{name}: distribution sums to {sum}"
            );
        }
    }

    #[test]
    fn csv_export_shape() {
        let cfg = tiny();
        let rows = scheme_comparison_filtered(
            &cfg,
            &[Scheme::Baseline, Scheme::Pra],
            PagePolicy::RelaxedClosePage,
            |name| name == "GUPS",
        );
        let csv = comparison_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + two rows");
        assert!(lines[0].starts_with("workload,scheme,"));
        let fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), fields, "ragged row: {line}");
        }
        assert!(lines[1].starts_with("GUPS,baseline,1.000000,"));
    }

    #[test]
    fn alone_ipc_is_memoised() {
        let cfg = tiny();
        let mut runner = Runner::new();
        let a = runner.alone_ipc(&workloads::gups(), PagePolicy::RelaxedClosePage, &cfg);
        let b = runner.alone_ipc(&workloads::gups(), PagePolicy::RelaxedClosePage, &cfg);
        assert_eq!(a, b);
        assert_eq!(runner.alone_cache.len(), 1);
    }
}
