//! Deterministic checkpoint/restore serialization for the PRA stack.
//!
//! A *snapshot* is a zero-dependency binary image of the complete mutable
//! simulator state at one memory cycle, written so a run restored from it
//! finishes with a `state_digest` bit-identical to an uninterrupted run.
//! This crate owns the container format and the typed writer/reader; the
//! simulation crates each implement [`SnapState`] over their own private
//! state (bank FSMs, queue contents, RNG streams, retry budgets, metric
//! accumulators) and `pra-core` stitches them into one payload.
//!
//! # File layout
//!
//! ```text
//! magic "PRASNAP\0"            8 bytes
//! schema version               u32 LE
//! reserved flags               u32 LE (zero)
//! config digest                u64 LE (builder configuration FNV-1a)
//! memory cycle                 u64 LE
//! payload length               u64 LE
//! payload                      <length> bytes (SnapWriter stream)
//! checksum                     u64 LE (FNV-1a over everything above)
//! ```
//!
//! The trailing checksum plus the explicit payload length make torn files
//! (the kill-mid-write artifact) and bit corruption detectable:
//! [`read_snapshot`] refuses them with [`SnapError::Corrupt`], and
//! [`latest_valid`] silently falls back to the next-older checkpoint in the
//! directory.
//!
//! Snapshots are written atomically: the bytes land in a dot-prefixed
//! temporary in the same directory, then [`rename`](std::fs::rename) makes
//! the finished file visible. A reader can therefore never observe a
//! half-written `snap-*.snap` file through the normal naming scheme.
//!
//! Floats are serialized via [`f64::to_bits`], so energy accumulators
//! survive the round trip bit-exactly. Sections ([`SnapWriter::section`] /
//! [`SnapReader::section`]) name the component being serialized, turning a
//! save/load ordering mismatch into a clear error instead of garbage state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Version of the snapshot payload schema. Bump on ANY change to what the
/// simulation crates serialize (fields, ordering, encoding): old snapshots
/// are then refused with [`SnapError::Schema`] instead of being
/// misinterpreted. There is deliberately no cross-version migration — a
/// snapshot is a resume artifact, not an archival format.
pub const SCHEMA_VERSION: u32 = 1;

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PRASNAP\0";

/// File name extension of finished snapshots (`snap-<cycle>.snap`).
pub const SNAP_SUFFIX: &str = ".snap";

const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;
const CHECKSUM_LEN: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` — the same digest family the rest of the
/// workspace uses for state and configuration digests.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a snapshot could not be produced or consumed.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem failure (create, write, rename, read, scan).
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The file is not a snapshot, is truncated, or fails its checksum.
    Corrupt(String),
    /// The snapshot was written by a different payload schema.
    Schema {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The snapshot belongs to a different simulator configuration.
    ConfigDigest {
        /// Digest recorded in the snapshot header.
        found: u64,
        /// Digest of the configuration attempting the restore.
        expected: u64,
    },
    /// The payload stream ended or diverged mid-read (a save/load ordering
    /// bug, or corruption the checksum could not see — never expected).
    Decode(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io { path, source } => {
                write!(f, "snapshot I/O on {}: {source}", path.display())
            }
            SnapError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapError::Schema { found, expected } => write!(
                f,
                "snapshot schema v{found} is not readable by this build (expects v{expected})"
            ),
            SnapError::ConfigDigest { found, expected } => write!(
                f,
                "snapshot belongs to config {found:016x}, not the requested {expected:016x} \
                 — restoring would silently continue a different simulation"
            ),
            SnapError::Decode(msg) => write!(f, "snapshot decode: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serializes mutable simulator state into a snapshot payload and overlays
/// it back. The contract: `snap_load` must leave `self` in exactly the
/// state `snap_save` captured, assuming `self` was rebuilt from the same
/// configuration (immutable parameters are *not* serialized — the config
/// digest in the header guarantees they match).
pub trait SnapState {
    /// Appends this component's mutable state to the payload.
    fn snap_save(&self, w: &mut SnapWriter);

    /// Overlays the state captured by [`SnapState::snap_save`] onto a
    /// freshly-constructed `self`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] when the stream ends early or a section tag
    /// disagrees — either way the snapshot and the code are out of step and
    /// `self` must not be trusted.
    fn snap_load(&mut self, r: &mut SnapReader) -> Result<(), SnapError>;
}

/// Typed append-only payload writer. Infallible: it only grows a buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty payload.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// The serialized payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Starts a named section. The matching [`SnapReader::section`] call
    /// verifies the name, catching save/load ordering mismatches early.
    pub fn section(&mut self, name: &str) {
        self.str(name);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` (stored as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// A boolean (one byte, 0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// An `f64`, bit-exact via [`f64::to_bits`].
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// An optional `u64`: presence tag then the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
            None => self.bool(false),
        }
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Raw bytes with a length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// A sequence length prefix; follow with that many elements.
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Typed payload reader over a decoded snapshot. Every read is
/// bounds-checked and returns [`SnapError::Decode`] instead of panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over a payload produced by [`SnapWriter`].
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Verifies the whole payload was consumed — a leftover tail means the
    /// save and load surfaces disagree.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] naming the number of unread bytes.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Decode(format!(
                "{} unread payload bytes after restore — save/load surfaces disagree",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Decode(format!(
                "payload ends early: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Verifies the next section tag is `name`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] naming both sections on a mismatch.
    pub fn section(&mut self, name: &str) -> Result<(), SnapError> {
        let found = self.str()?;
        if found != name {
            return Err(SnapError::Decode(format!(
                "expected section {name:?}, found {found:?} — snapshot and code are out of step"
            )));
        }
        Ok(())
    }

    /// One byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] when the payload ends early.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// A `u32`, little-endian.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] when the payload ends early.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A `u64`, little-endian.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] when the payload ends early.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] on early end or a value exceeding the host's
    /// `usize` range.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| SnapError::Decode(format!("length {v} does not fit this host's usize")))
    }

    /// A boolean.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] on early end or a byte other than 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Decode(format!(
                "invalid boolean byte 0x{other:02x}"
            ))),
        }
    }

    /// An `f64`, bit-exact via [`f64::from_bits`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] when the payload ends early.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// An optional `u64` written by [`SnapWriter::opt_u64`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] on early end or a bad presence tag.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// A length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] on early end or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Decode("string payload is not UTF-8".to_string()))
    }

    /// Raw bytes with a length prefix.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] when the payload ends early.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let len = self.usize()?;
        Ok(self.take(len)?.to_vec())
    }

    /// A sequence length written by [`SnapWriter::seq`], bounded by the
    /// remaining payload so a corrupt length cannot drive a huge
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`SnapError::Decode`] on early end or an impossible length.
    pub fn seq(&mut self) -> Result<usize, SnapError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(SnapError::Decode(format!(
                "sequence length {len} exceeds the {} remaining payload bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

/// Decoded snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapHeader {
    /// Payload schema version (always [`SCHEMA_VERSION`] after a
    /// successful read).
    pub version: u32,
    /// FNV-1a digest of the simulator configuration that wrote the file.
    pub config_digest: u64,
    /// Memory cycle at which the state was captured.
    pub cycle: u64,
}

/// Encodes a complete snapshot file image: header, payload, checksum.
pub fn encode_snapshot(config_digest: u64, cycle: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&config_digest.to_le_bytes());
    out.extend_from_slice(&cycle.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a_64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes and verifies a snapshot image: magic, schema version, payload
/// length and trailing checksum.
///
/// # Errors
///
/// [`SnapError::Corrupt`] on truncation, bad magic or checksum mismatch;
/// [`SnapError::Schema`] on a version this build does not read.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SnapHeader, &[u8]), SnapError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapError::Corrupt(format!(
            "file is {} bytes, shorter than the {}-byte header + checksum",
            bytes.len(),
            HEADER_LEN + CHECKSUM_LEN
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(SnapError::Corrupt("bad magic — not a snapshot".to_string()));
    }
    let u32_at =
        |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
    let u64_at = |o: usize| {
        u64::from_le_bytes([
            bytes[o],
            bytes[o + 1],
            bytes[o + 2],
            bytes[o + 3],
            bytes[o + 4],
            bytes[o + 5],
            bytes[o + 6],
            bytes[o + 7],
        ])
    };
    let version = u32_at(8);
    if version != SCHEMA_VERSION {
        return Err(SnapError::Schema {
            found: version,
            expected: SCHEMA_VERSION,
        });
    }
    let config_digest = u64_at(16);
    let cycle = u64_at(24);
    let payload_len = u64_at(32) as usize;
    let expected_total = HEADER_LEN + payload_len + CHECKSUM_LEN;
    if bytes.len() != expected_total {
        return Err(SnapError::Corrupt(format!(
            "file is {} bytes but the header promises {} (torn write?)",
            bytes.len(),
            expected_total
        )));
    }
    let stored = u64_at(HEADER_LEN + payload_len);
    let computed = fnv1a_64(&bytes[..HEADER_LEN + payload_len]);
    if stored != computed {
        return Err(SnapError::Corrupt(format!(
            "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }
    Ok((
        SnapHeader {
            version,
            config_digest,
            cycle,
        },
        &bytes[HEADER_LEN..HEADER_LEN + payload_len],
    ))
}

/// The canonical file name of a checkpoint at `cycle` (zero-padded so
/// lexicographic order is cycle order).
pub fn snapshot_file_name(cycle: u64) -> String {
    format!("snap-{cycle:020}{SNAP_SUFFIX}")
}

/// Writes a snapshot atomically into `dir` (created if absent): the bytes
/// land in a dot-prefixed temporary, then a rename publishes
/// `snap-<cycle>.snap`. Returns the final path.
///
/// # Errors
///
/// [`SnapError::Io`] on any filesystem failure; the temporary is removed
/// on a failed rename.
pub fn write_snapshot(
    dir: &Path,
    config_digest: u64,
    cycle: u64,
    payload: &[u8],
) -> Result<PathBuf, SnapError> {
    let io = |path: &Path, source: std::io::Error| SnapError::Io {
        path: path.to_path_buf(),
        source,
    };
    std::fs::create_dir_all(dir).map_err(|e| io(dir, e))?;
    let image = encode_snapshot(config_digest, cycle, payload);
    let final_path = dir.join(snapshot_file_name(cycle));
    let tmp_path = dir.join(format!(".tmp-snap-{cycle:020}"));
    std::fs::write(&tmp_path, &image).map_err(|e| io(&tmp_path, e))?;
    if let Err(e) = std::fs::rename(&tmp_path, &final_path) {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(io(&final_path, e));
    }
    Ok(final_path)
}

/// Reads and verifies one snapshot file. When `expected_config_digest` is
/// given, the header digest must match.
///
/// # Errors
///
/// [`SnapError::Io`] on read failure, [`SnapError::Corrupt`] /
/// [`SnapError::Schema`] from [`decode_snapshot`], and
/// [`SnapError::ConfigDigest`] on a digest mismatch.
pub fn read_snapshot(
    path: &Path,
    expected_config_digest: Option<u64>,
) -> Result<(SnapHeader, Vec<u8>), SnapError> {
    let bytes = std::fs::read(path).map_err(|e| SnapError::Io {
        path: path.to_path_buf(),
        source: e,
    })?;
    let (header, payload) = decode_snapshot(&bytes)?;
    if let Some(expected) = expected_config_digest {
        if header.config_digest != expected {
            return Err(SnapError::ConfigDigest {
                found: header.config_digest,
                expected,
            });
        }
    }
    Ok((header, payload.to_vec()))
}

/// The newest *valid* checkpoint in `dir`: candidates are scanned newest
/// cycle first, and torn, corrupt, wrong-schema or wrong-config files are
/// skipped (counted in the result) so a kill mid-write falls back to the
/// next-older checkpoint instead of failing the restore. Returns `Ok(None)`
/// when the directory is absent, empty, or holds no valid snapshot.
///
/// # Errors
///
/// [`SnapError::Io`] only on a directory scan failure — unreadable
/// individual files are treated as invalid candidates, not errors.
pub fn latest_valid(
    dir: &Path,
    expected_config_digest: Option<u64>,
) -> Result<Option<FoundSnapshot>, SnapError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(SnapError::Io {
                path: dir.to_path_buf(),
                source: e,
            })
        }
    };
    let mut candidates: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(SNAP_SUFFIX))
        })
        .collect();
    // Zero-padded names: lexicographic descending = newest cycle first.
    candidates.sort();
    candidates.reverse();
    let mut skipped = 0u64;
    for path in candidates {
        match read_snapshot(&path, expected_config_digest) {
            Ok((header, payload)) => {
                return Ok(Some(FoundSnapshot {
                    path,
                    header,
                    payload,
                    skipped,
                }))
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

/// A checkpoint located by [`latest_valid`].
#[derive(Debug)]
pub struct FoundSnapshot {
    /// Path of the valid snapshot file.
    pub path: PathBuf,
    /// Its decoded header.
    pub header: SnapHeader,
    /// Its verified payload.
    pub payload: Vec<u8>,
    /// Newer candidate files skipped as torn/corrupt/mismatched before
    /// this one validated.
    pub skipped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sim-snap-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writer_reader_roundtrip_all_types() {
        let mut w = SnapWriter::new();
        w.section("demo");
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(77);
        w.bool(true);
        w.bool(false);
        w.f64(-0.1);
        w.f64(f64::NAN);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.str("hello 世界");
        w.bytes(&[1, 2, 3]);
        w.seq(2);
        w.u8(4);
        w.u8(5);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        r.section("demo").unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 77);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.f64().unwrap().is_nan(), "NaN survives bit-exactly");
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "hello 世界");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.seq().unwrap(), 2);
        assert_eq!(r.u8().unwrap(), 4);
        assert_eq!(r.u8().unwrap(), 5);
        r.finish().unwrap();
    }

    #[test]
    fn section_mismatch_is_a_clear_error() {
        let mut w = SnapWriter::new();
        w.section("dram");
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        let e = r.section("cache").unwrap_err();
        assert!(e.to_string().contains("expected section \"cache\""), "{e}");
        assert!(e.to_string().contains("\"dram\""), "{e}");
    }

    #[test]
    fn truncated_payload_errors_instead_of_panicking() {
        let mut w = SnapWriter::new();
        w.u64(5);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload[..4]);
        assert!(matches!(r.u64(), Err(SnapError::Decode(_))));
        // A hostile sequence length is rejected before allocation.
        let mut w = SnapWriter::new();
        w.usize(usize::MAX / 2);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(r.seq(), Err(SnapError::Decode(_))));
    }

    #[test]
    fn unread_tail_is_reported() {
        let mut w = SnapWriter::new();
        w.u64(1);
        w.u64(2);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        r.u64().unwrap();
        let e = r.finish().unwrap_err();
        assert!(e.to_string().contains("8 unread"), "{e}");
    }

    #[test]
    fn encode_decode_roundtrip_and_header_fields() {
        let image = encode_snapshot(0x1234, 999, b"payload");
        let (header, payload) = decode_snapshot(&image).unwrap();
        assert_eq!(header.version, SCHEMA_VERSION);
        assert_eq!(header.config_digest, 0x1234);
        assert_eq!(header.cycle, 999);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn torn_and_corrupt_images_are_detected() {
        let image = encode_snapshot(7, 100, &[9u8; 64]);
        // Truncation at every byte boundary is caught.
        for cut in 0..image.len() {
            assert!(
                matches!(decode_snapshot(&image[..cut]), Err(SnapError::Corrupt(_))),
                "cut at {cut} must be rejected"
            );
        }
        // A single flipped payload bit fails the checksum.
        let mut flipped = image.clone();
        flipped[HEADER_LEN + 10] ^= 0x40;
        let e = decode_snapshot(&flipped).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
        // Bad magic is not a snapshot at all.
        let mut bad = image.clone();
        bad[0] = b'X';
        let e = decode_snapshot(&bad).unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");
    }

    #[test]
    fn future_schema_is_refused() {
        let mut image = encode_snapshot(1, 1, b"x");
        image[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        // Re-seal the checksum so only the version differs.
        let body_len = image.len() - CHECKSUM_LEN;
        let sum = fnv1a_64(&image[..body_len]);
        image[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&image),
            Err(SnapError::Schema { .. })
        ));
    }

    #[test]
    fn write_read_and_config_digest_check() {
        let dir = temp_dir("write-read");
        let path = write_snapshot(&dir, 42, 1000, b"state").unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("snap-"));
        let (header, payload) = read_snapshot(&path, Some(42)).unwrap();
        assert_eq!(header.cycle, 1000);
        assert_eq!(payload, b"state");
        let e = read_snapshot(&path, Some(43)).unwrap_err();
        assert!(matches!(
            e,
            SnapError::ConfigDigest {
                found: 42,
                expected: 43
            }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_prefers_newest_and_falls_back_past_torn_files() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, 1, 100, b"old").unwrap();
        write_snapshot(&dir, 1, 200, b"mid").unwrap();
        let newest = write_snapshot(&dir, 1, 300, b"new").unwrap();
        let found = latest_valid(&dir, Some(1)).unwrap().unwrap();
        assert_eq!(found.header.cycle, 300);
        assert_eq!(found.skipped, 0);
        // Truncate the newest (torn write): fallback to cycle 200.
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let found = latest_valid(&dir, Some(1)).unwrap().unwrap();
        assert_eq!(found.header.cycle, 200);
        assert_eq!(found.payload, b"mid");
        assert_eq!(found.skipped, 1);
        // A wrong config digest skips everything.
        assert!(latest_valid(&dir, Some(2)).unwrap().is_none());
        // Absent directory is a clean None.
        assert!(latest_valid(&dir.join("nope"), None).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_names_sort_by_cycle() {
        let a = snapshot_file_name(999);
        let b = snapshot_file_name(1000);
        assert!(a < b, "zero padding keeps lexicographic = numeric order");
    }
}
