//! Thread-local hierarchical span profiler.
//!
//! Instrumentation sites create a [`SpanGuard`] with [`span`] (usually via
//! the [`crate::span!`] macro); the guard's `Drop` closes the span. Spans
//! nest on a per-thread stack, so each span's elapsed time is attributed
//! both to its own aggregate and to its parent's child time — the
//! difference (`total - child`) is the span's *self* time, the quantity a
//! flat profile ranks by.
//!
//! The profiler is off by default. While off, [`span`] reads one
//! thread-local flag and returns an inert guard: no clock call, no
//! allocation, no state change — the uninstrumented path stays free and
//! simulation state can never depend on whether profiling is enabled.

use std::cell::{Cell, RefCell};

use crate::clock::now_nanos;
use crate::report::{ProfileReport, SpanStat};

/// One closed span occurrence on the recorded timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`domain.name`, matching docs/metrics.md conventions).
    pub name: &'static str,
    /// Start, in nanoseconds since the thread's clock anchor.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
}

/// The recorded span timeline, drained by [`take_timeline`].
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Closed spans in close order (capped at the configured capacity).
    pub spans: Vec<SpanRecord>,
    /// Spans that closed after the capacity was reached and were dropped.
    pub dropped: u64,
}

struct Frame {
    slot: usize,
    start_ns: u64,
    child_ns: u64,
    depth: u32,
}

#[derive(Default)]
struct Agg {
    name: &'static str,
    calls: u64,
    total_ns: u64,
    child_ns: u64,
}

#[derive(Default)]
struct State {
    stack: Vec<Frame>,
    aggs: Vec<Agg>,
    timeline: Vec<SpanRecord>,
    timeline_capacity: usize,
    timeline_dropped: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<State> = RefCell::new(State::default());
}

/// Turns profiling on for this thread. Aggregates accumulate until
/// [`reset`] or [`take_report`].
pub fn enable() {
    ENABLED.with(|e| e.set(true));
}

/// Turns profiling off. Guards already open will still close correctly;
/// guards created while disabled never touch the clock.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// Whether profiling is currently enabled on this thread.
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Additionally records every closed span (up to `capacity`) for timeline
/// export; `0` disables recording. Implies nothing about [`enable`] —
/// call both to capture a timeline.
pub fn set_timeline_capacity(capacity: usize) {
    STATE.with_borrow_mut(|s| s.timeline_capacity = capacity);
}

/// Clears all aggregates, the recorded timeline and the open-span stack.
/// The enabled flag and timeline capacity are preserved.
pub fn reset() {
    STATE.with_borrow_mut(|s| {
        s.stack.clear();
        s.aggs.clear();
        s.timeline.clear();
        s.timeline_dropped = 0;
    });
}

/// Opens a span named `name`; the returned guard closes it on drop.
///
/// When profiling is disabled this is one thread-local read and an inert
/// guard — the clock is never touched.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: false };
    }
    open_span(name);
    SpanGuard { active: true }
}

/// Snapshot of the per-span aggregates (open spans are not included until
/// they close). Does not reset anything.
pub fn report() -> ProfileReport {
    STATE.with_borrow(|s| ProfileReport {
        spans: s
            .aggs
            .iter()
            .map(|a| SpanStat {
                name: a.name.to_string(),
                calls: a.calls,
                total_ns: a.total_ns,
                child_ns: a.child_ns,
            })
            .collect(),
    })
}

/// [`report`] followed by [`reset`].
pub fn take_report() -> ProfileReport {
    let r = report();
    reset();
    r
}

/// Drains the recorded timeline (closed spans plus the over-capacity drop
/// count), leaving the aggregates untouched.
pub fn take_timeline() -> Timeline {
    STATE.with_borrow_mut(|s| Timeline {
        spans: std::mem::take(&mut s.timeline),
        dropped: std::mem::take(&mut s.timeline_dropped),
    })
}

fn open_span(name: &'static str) {
    let start_ns = now_nanos();
    STATE.with_borrow_mut(|s| {
        let slot = match s.aggs.iter().position(|a| a.name == name) {
            Some(i) => i,
            None => {
                s.aggs.push(Agg {
                    name,
                    ..Agg::default()
                });
                s.aggs.len() - 1
            }
        };
        let depth = s.stack.len() as u32;
        s.stack.push(Frame {
            slot,
            start_ns,
            child_ns: 0,
            depth,
        });
    });
}

fn close_span() {
    let end_ns = now_nanos();
    STATE.with_borrow_mut(|s| {
        // An active guard can outlive a `reset()` that cleared the stack;
        // closing then is a no-op rather than a misattribution.
        let Some(frame) = s.stack.pop() else { return };
        let elapsed = end_ns.saturating_sub(frame.start_ns);
        {
            let agg = &mut s.aggs[frame.slot];
            agg.calls += 1;
            agg.total_ns += elapsed;
            agg.child_ns += frame.child_ns;
        }
        let name = s.aggs[frame.slot].name;
        if let Some(parent) = s.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        if s.timeline_capacity > 0 {
            if s.timeline.len() < s.timeline_capacity {
                s.timeline.push(SpanRecord {
                    name,
                    start_ns: frame.start_ns,
                    dur_ns: elapsed,
                    depth: frame.depth,
                });
            } else {
                s.timeline_dropped += 1;
            }
        }
    });
}

/// RAII guard returned by [`span`]; closes the span when dropped.
///
/// A guard created while profiling was disabled stays inert even if
/// profiling is enabled before it drops, so enable/disable transitions
/// can never unbalance the span stack.
#[must_use = "a span guard measures the scope it lives in; dropping it immediately measures nothing"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            close_span();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean_profiler(f: impl FnOnce()) {
        reset();
        set_timeline_capacity(0);
        enable();
        f();
        disable();
        reset();
    }

    #[test]
    fn disabled_span_records_nothing() {
        disable();
        reset();
        {
            let _g = span("test.disabled");
        }
        assert!(report().spans.is_empty());
    }

    #[test]
    fn guard_created_disabled_stays_inert_after_enable() {
        disable();
        reset();
        let g = span("test.inert");
        enable();
        drop(g);
        assert!(report().spans.is_empty(), "inert guard must not close");
        disable();
    }

    #[test]
    fn nested_spans_attribute_self_and_child_time() {
        with_clean_profiler(|| {
            {
                let _outer = span("test.outer");
                for _ in 0..3 {
                    let _inner = span("test.inner");
                }
            }
            let rep = report();
            let outer = rep.spans.iter().find(|s| s.name == "test.outer").unwrap();
            let inner = rep.spans.iter().find(|s| s.name == "test.inner").unwrap();
            assert_eq!(outer.calls, 1);
            assert_eq!(inner.calls, 3);
            assert!(
                outer.total_ns >= outer.child_ns,
                "total ({}) must cover child time ({})",
                outer.total_ns,
                outer.child_ns
            );
            assert!(
                outer.child_ns >= inner.total_ns,
                "all inner time is the outer span's child time"
            );
            assert_eq!(inner.child_ns, 0, "leaf spans have no children");
            assert_eq!(outer.self_ns(), outer.total_ns - outer.child_ns);
        });
    }

    #[test]
    fn take_report_resets_aggregates() {
        with_clean_profiler(|| {
            {
                let _g = span("test.once");
            }
            let first = take_report();
            assert_eq!(first.spans.len(), 1);
            assert!(report().spans.is_empty());
        });
    }

    #[test]
    fn timeline_caps_and_counts_drops() {
        with_clean_profiler(|| {
            set_timeline_capacity(2);
            for _ in 0..5 {
                let _g = span("test.tl");
            }
            let tl = take_timeline();
            assert_eq!(tl.spans.len(), 2);
            assert_eq!(tl.dropped, 3);
            assert!(tl.spans.iter().all(|r| r.name == "test.tl" && r.depth == 0));
            // The aggregate view is unaffected by draining the timeline.
            assert_eq!(report().spans[0].calls, 5);
        });
    }

    #[test]
    fn timeline_records_depth_and_ordering() {
        with_clean_profiler(|| {
            set_timeline_capacity(16);
            {
                let _outer = span("test.depth0");
                let _inner = span("test.depth1");
            }
            let tl = take_timeline();
            // Inner closes first (drop order), at depth 1.
            assert_eq!(tl.spans[0].name, "test.depth1");
            assert_eq!(tl.spans[0].depth, 1);
            assert_eq!(tl.spans[1].name, "test.depth0");
            assert_eq!(tl.spans[1].depth, 0);
            assert!(tl.spans[1].start_ns <= tl.spans[0].start_ns);
            assert_eq!(tl.dropped, 0);
        });
    }
}
