//! Performance observability for the PRA simulation stack.
//!
//! Two halves, both zero-dependency:
//!
//! * **Host-time profiler** — scoped spans created with [`span!`] nest on
//!   a thread-local stack and roll up into a [`ProfileReport`] with
//!   per-span call counts and self/child time attribution. Span names
//!   follow the same `domain.name` convention as docs/metrics.md
//!   (`dram.tick`, `cpu.tick`, `cache.access`...). Profiling is off by
//!   default; while off a span site costs one thread-local read and never
//!   touches the clock, so simulation state cannot depend on it.
//! * **Perfetto exporter** — [`PerfettoTrace`] serializes profiler span
//!   timelines and sim-obs DRAM/CPU trace events into one Chrome
//!   trace-event JSON file with the two clock domains on separate
//!   process tracks.
//!
//! # Example
//!
//! ```
//! sim_prof::enable();
//! {
//!     let _tick = sim_prof::span!("dram.tick");
//!     // ... hot-loop work, possibly opening nested spans ...
//! }
//! let report = sim_prof::take_report();
//! assert_eq!(report.spans[0].name, "dram.tick");
//! sim_prof::disable();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod clock;
mod perfetto;
mod profiler;
mod report;

pub use perfetto::{PerfettoTrace, CPU_PID, DRAM_PID_BASE, HOST_PID};
pub use profiler::{
    disable, enable, is_enabled, report, reset, set_timeline_capacity, span, take_report,
    take_timeline, SpanGuard, SpanRecord, Timeline,
};
pub use report::{ProfileReport, SpanStat};

/// Opens a profiling span for the enclosing scope; bind the guard to keep
/// it alive: `let _span = sim_prof::span!("dram.tick");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
