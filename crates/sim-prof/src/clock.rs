//! The profiler's single window onto the host monotonic clock.
//!
//! The workspace forbids wall-clock and monotonic time everywhere the
//! simulator's behaviour could observe it (sim-lint's
//! `forbid-wallclock-and-unsafe` pass), so that results stay a pure
//! function of configuration and seed. Host-time *profiling* is the
//! sanctioned exception, and this module is the only place in `sim-prof`
//! allowed to read the clock — sim-lint exempts exactly this file, the
//! same way it keeps `sim-harness`'s digest module strict while exempting
//! the rest of that crate.

use std::time::Instant;

thread_local! {
    /// Per-thread anchor; all span timestamps are nanoseconds since the
    /// first clock read on this thread.
    static ANCHOR: Instant = Instant::now();
}

/// Monotonic nanoseconds since this thread first read the clock.
pub(crate) fn now_nanos() -> u64 {
    ANCHOR.with(|anchor| {
        let nanos = anchor.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a, "monotonic clock went backwards: {a} -> {b}");
    }
}
