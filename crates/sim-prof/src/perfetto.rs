//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Produces a single `{"traceEvents":[...]}` document loadable by
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`, combining
//! two clock domains kept apart as separate processes:
//!
//! * **Host time** — profiler [`SpanRecord`]s become complete (`"X"`)
//!   events under the "host profiler" process; 1 µs of trace time is 1 µs
//!   of host time.
//! * **Simulated time** — sim-obs [`TraceEvent`]s become per-bank command
//!   tracks under one process per DRAM channel (plus one for the CPU/cache
//!   domain); 1 µs of trace time is 1 simulated cycle of the emitting
//!   clock domain.
//!
//! All strings written into the JSON are either static tags or formatted
//! numbers, so no escaping is required.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use sim_obs::TraceEvent;

use crate::profiler::SpanRecord;

/// Synthetic pid carrying host-time profiler spans.
pub const HOST_PID: u32 = 1;
/// Synthetic pid carrying CPU-clock-domain events (cache fills,
/// writebacks, core stalls).
pub const CPU_PID: u32 = 2;
/// Synthetic pid of DRAM channel 0; channel `c` maps to `DRAM_PID_BASE + c`.
pub const DRAM_PID_BASE: u32 = 10;
/// Synthetic pid carrying DRAM power-telemetry counter tracks (epoch
/// power rails in mW, cumulative energy in pJ, per-rank residency).
pub const POWER_PID: u32 = 3;

const RANK_TID_BASE: u32 = 900;
const COMPLETION_TID: u32 = 990;
const DRAIN_TID: u32 = 991;
const WRITEBACK_TID: u32 = 99;
const SNAP_TID: u32 = 98;

/// Incremental builder for a combined host + simulated-time trace.
#[derive(Debug, Default)]
pub struct PerfettoTrace {
    events: Vec<String>,
    named_processes: BTreeSet<u32>,
    named_threads: BTreeSet<(u32, u32)>,
    /// Running total of epoch energy deltas (pJ), driving the
    /// `energy.cumulative_pj` counter track.
    cumulative_pj: u64,
}

impl PerfettoTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PerfettoTrace::default()
    }

    /// Number of (non-metadata) events added so far.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Adds every closed profiler span as a host-time slice.
    pub fn add_host_spans(&mut self, spans: &[SpanRecord]) {
        self.name_process(HOST_PID, "host profiler (µs = host µs)");
        self.name_thread(HOST_PID, 1, "spans");
        for rec in spans {
            let ts = rec.start_ns as f64 / 1000.0;
            let dur = rec.dur_ns as f64 / 1000.0;
            let mut e = String::with_capacity(128);
            let _ = write!(
                e,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"pid\":{HOST_PID},\"tid\":1,\"args\":{{\"depth\":{}}}}}",
                rec.name, rec.depth
            );
            self.events.push(e);
        }
    }

    /// Adds a batch of simulated events (see [`PerfettoTrace::add_sim_event`]).
    pub fn add_sim_events<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for ev in events {
            self.add_sim_event(ev);
        }
    }

    /// Adds one simulated event on its clock-domain track: DRAM commands
    /// land on a per-bank track of their channel's process (with row and
    /// PRA mats/mask args on activations), rank-level commands (REF, power
    /// up/down) on a per-rank track, and CPU-domain events under the CPU
    /// process.
    pub fn add_sim_event(&mut self, ev: &TraceEvent) {
        let kind = ev.kind();
        let ts = ev.cycle();
        match *ev {
            TraceEvent::Activate {
                channel,
                rank,
                bank,
                row,
                mats,
                mask,
                ..
            } => {
                let (pid, tid) = self.bank_track(channel, rank, bank);
                self.push_complete(
                    kind,
                    pid,
                    tid,
                    ts,
                    1,
                    &format!("\"row\":{row},\"mats\":{mats},\"mask\":{mask}"),
                );
            }
            TraceEvent::Read {
                channel,
                rank,
                bank,
                row,
                ..
            }
            | TraceEvent::Write {
                channel,
                rank,
                bank,
                row,
                ..
            } => {
                let (pid, tid) = self.bank_track(channel, rank, bank);
                self.push_complete(kind, pid, tid, ts, 1, &format!("\"row\":{row}"));
            }
            TraceEvent::Precharge {
                channel,
                rank,
                bank,
                ..
            }
            | TraceEvent::ParityAlert {
                channel,
                rank,
                bank,
                ..
            } => {
                let (pid, tid) = self.bank_track(channel, rank, bank);
                self.push_complete(kind, pid, tid, ts, 1, "");
            }
            TraceEvent::CommandReplay {
                channel,
                rank,
                bank,
                attempt,
                ..
            } => {
                let (pid, tid) = self.bank_track(channel, rank, bank);
                self.push_complete(kind, pid, tid, ts, 1, &format!("\"attempt\":{attempt}"));
            }
            TraceEvent::RecoveryExhausted {
                channel,
                rank,
                bank,
                row,
                ..
            }
            | TraceEvent::RowDemote {
                channel,
                rank,
                bank,
                row,
                ..
            }
            | TraceEvent::RowPromote {
                channel,
                rank,
                bank,
                row,
                ..
            }
            | TraceEvent::ParityEscape {
                channel,
                rank,
                bank,
                row,
                ..
            } => {
                let (pid, tid) = self.bank_track(channel, rank, bank);
                self.push_complete(kind, pid, tid, ts, 1, &format!("\"row\":{row}"));
            }
            TraceEvent::Refresh { channel, rank, .. }
            | TraceEvent::PowerDown { channel, rank, .. }
            | TraceEvent::PowerUp { channel, rank, .. } => {
                let pid = self.channel_process(channel);
                let tid = RANK_TID_BASE + u32::from(rank);
                self.name_thread(pid, tid, &format!("rank{rank} ctrl"));
                self.push_complete(kind, pid, tid, ts, 1, "");
            }
            TraceEvent::ReadComplete {
                channel, latency, ..
            } => {
                let pid = self.channel_process(channel);
                self.name_thread(pid, COMPLETION_TID, "read completions");
                self.push_complete(
                    kind,
                    pid,
                    COMPLETION_TID,
                    ts,
                    1,
                    &format!("\"latency\":{latency}"),
                );
            }
            TraceEvent::DrainEnter { channel, .. } => {
                let pid = self.channel_process(channel);
                self.name_thread(pid, DRAIN_TID, "write drain");
                self.push_complete(kind, pid, DRAIN_TID, ts, 1, "");
            }
            TraceEvent::CacheFill {
                core,
                line,
                from_memory,
                ..
            } => {
                let tid = self.core_track(core);
                self.push_complete(
                    kind,
                    CPU_PID,
                    tid,
                    ts,
                    1,
                    &format!("\"line\":{line},\"from_memory\":{from_memory}"),
                );
            }
            TraceEvent::CacheWriteback {
                line, mask, dbi, ..
            } => {
                self.cpu_process();
                self.name_thread(CPU_PID, WRITEBACK_TID, "writebacks");
                self.push_complete(
                    kind,
                    CPU_PID,
                    WRITEBACK_TID,
                    ts,
                    1,
                    &format!("\"line\":{line},\"mask\":{mask},\"dbi\":{dbi}"),
                );
            }
            TraceEvent::CoreStall {
                core,
                reason,
                cycles,
                ..
            } => {
                let tid = self.core_track(core);
                self.push_complete(
                    kind,
                    CPU_PID,
                    tid,
                    ts,
                    cycles.max(1),
                    &format!("\"reason\":\"{}\",\"cycles\":{cycles}", reason.name()),
                );
            }
            TraceEvent::Checkpoint { seq, .. } => {
                self.cpu_process();
                self.name_thread(CPU_PID, SNAP_TID, "checkpoints");
                self.push_complete(kind, CPU_PID, SNAP_TID, ts, 1, &format!("\"seq\":{seq}"));
            }
            TraceEvent::Restore { .. } => {
                self.cpu_process();
                self.name_thread(CPU_PID, SNAP_TID, "checkpoints");
                self.push_complete(kind, CPU_PID, SNAP_TID, ts, 1, "");
            }
            TraceEvent::PowerEpoch {
                act_pre_pj,
                rd_pj,
                wr_pj,
                rd_io_pj,
                wr_io_pj,
                bg_pj,
                refresh_pj,
                total_uw,
                ..
            } => {
                self.power_process();
                self.push_counter(
                    "power.total_mw",
                    ts,
                    &format!("\"mW\":{:.3}", total_uw as f64 / 1000.0),
                );
                self.push_counter(
                    "energy.epoch_pj",
                    ts,
                    &format!(
                        "\"act_pre\":{act_pre_pj},\"rd\":{rd_pj},\"wr\":{wr_pj},\
                         \"rd_io\":{rd_io_pj},\"wr_io\":{wr_io_pj},\"bg\":{bg_pj},\
                         \"refresh\":{refresh_pj}"
                    ),
                );
                self.cumulative_pj +=
                    act_pre_pj + rd_pj + wr_pj + rd_io_pj + wr_io_pj + bg_pj + refresh_pj;
                self.push_counter(
                    "energy.cumulative_pj",
                    ts,
                    &format!("\"pJ\":{}", self.cumulative_pj),
                );
            }
            TraceEvent::PowerRank {
                rank,
                act_stby,
                pre_stby,
                pdn,
                bg_uw,
                ..
            } => {
                self.power_process();
                self.push_counter(
                    &format!("rank{rank}.power_mw"),
                    ts,
                    &format!("\"bg_mW\":{:.3}", bg_uw as f64 / 1000.0),
                );
                self.push_counter(
                    &format!("rank{rank}.residency"),
                    ts,
                    &format!("\"act_stby\":{act_stby},\"pre_stby\":{pre_stby},\"pdn\":{pdn}"),
                );
            }
        }
    }

    /// Serializes the whole trace as one Chrome trace-event JSON document.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(self.events.iter().map(|e| e.len() + 1).sum::<usize>() + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    fn push_complete(&mut self, name: &str, pid: u32, tid: u32, ts: u64, dur: u64, args: &str) {
        let mut e = String::with_capacity(96 + args.len());
        let _ = write!(
            e,
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
        );
        self.events.push(e);
    }

    /// Emits one Chrome-trace counter (`ph:"C"`) sample. Counter-track
    /// identity is (pid, name); each key in `args` renders as one series.
    fn push_counter(&mut self, name: &str, ts: u64, args: &str) {
        let mut e = String::with_capacity(96 + args.len());
        let _ = write!(
            e,
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\
             \"pid\":{POWER_PID},\"tid\":0,\"args\":{{{args}}}}}"
        );
        self.events.push(e);
    }

    fn bank_track(&mut self, channel: u8, rank: u8, bank: u8) -> (u32, u32) {
        let pid = self.channel_process(channel);
        let tid = 1 + u32::from(rank) * 32 + u32::from(bank);
        self.name_thread(pid, tid, &format!("rank{rank}/bank{bank}"));
        (pid, tid)
    }

    fn channel_process(&mut self, channel: u8) -> u32 {
        let pid = DRAM_PID_BASE + u32::from(channel);
        self.name_process(pid, &format!("dram ch{channel} (µs = mem cycle)"));
        pid
    }

    fn cpu_process(&mut self) {
        self.name_process(CPU_PID, "cpu/cache (µs = cpu cycle)");
    }

    fn power_process(&mut self) {
        self.name_process(POWER_PID, "power rails (µs = mem cycle)");
    }

    fn core_track(&mut self, core: u8) -> u32 {
        self.cpu_process();
        let tid = 1 + u32::from(core);
        self.name_thread(CPU_PID, tid, &format!("core{core}"));
        tid
    }

    fn name_process(&mut self, pid: u32, name: &str) {
        if self.named_processes.insert(pid) {
            let mut e = String::with_capacity(96);
            let _ = write!(
                e,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
            self.events.push(e);
        }
    }

    fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        if self.named_threads.insert((pid, tid)) {
            let mut e = String::with_capacity(96);
            let _ = write!(
                e,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
            self.events.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(cycle: u64, bank: u8, mats: u32) -> TraceEvent {
        TraceEvent::Activate {
            cycle,
            channel: 0,
            rank: 0,
            bank,
            row: 7,
            mats,
            mask: 0x0F,
        }
    }

    #[test]
    fn banks_get_distinct_named_tracks_with_args() {
        let mut t = PerfettoTrace::new();
        t.add_sim_events([&act(5, 0, 4), &act(9, 3, 16)]);
        let json = t.to_json();
        assert!(json.contains("\"name\":\"PARTIAL_ACT\""));
        assert!(json.contains("\"name\":\"ACT\""));
        assert!(json.contains("\"row\":7,\"mats\":4,\"mask\":15"));
        assert!(json.contains("\"name\":\"rank0/bank0\""));
        assert!(json.contains("\"name\":\"rank0/bank3\""));
        assert!(json.contains("\"process_name\""));
    }

    #[test]
    fn host_and_sim_events_live_in_separate_processes() {
        let mut t = PerfettoTrace::new();
        t.add_host_spans(&[SpanRecord {
            name: "dram.tick",
            start_ns: 1500,
            dur_ns: 2500,
            depth: 0,
        }]);
        t.add_sim_event(&act(1, 0, 16));
        let json = t.to_json();
        assert!(json.contains(&format!("\"pid\":{HOST_PID}")));
        assert!(json.contains(&format!("\"pid\":{}", DRAM_PID_BASE)));
        assert!(json.contains("\"ts\":1.500,\"dur\":2.500"));
    }

    #[test]
    fn output_is_balanced_json() {
        let mut t = PerfettoTrace::new();
        t.add_sim_event(&TraceEvent::CoreStall {
            cycle: 10,
            core: 1,
            reason: sim_obs::StallKind::Rob,
            cycles: 4,
        });
        t.add_sim_event(&TraceEvent::ReadComplete {
            cycle: 30,
            channel: 1,
            latency: 22,
        });
        let json = t.to_json();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{json}");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn metadata_emitted_once_per_track() {
        let mut t = PerfettoTrace::new();
        t.add_sim_events([&act(1, 0, 16), &act(2, 0, 16), &act(3, 0, 16)]);
        let json = t.to_json();
        assert_eq!(json.matches("thread_name").count(), 1);
        assert_eq!(json.matches("process_name").count(), 1);
    }

    fn power_epoch(cycle: u64, epoch: u32, bg_pj: u64) -> TraceEvent {
        TraceEvent::PowerEpoch {
            cycle,
            epoch,
            act_pre_pj: 100,
            rd_pj: 20,
            wr_pj: 10,
            rd_io_pj: 4,
            wr_io_pj: 6,
            bg_pj,
            refresh_pj: 60,
            total_uw: 123_456,
        }
    }

    #[test]
    fn power_epochs_become_counter_tracks() {
        let mut t = PerfettoTrace::new();
        t.add_sim_event(&power_epoch(1000, 0, 300));
        t.add_sim_event(&power_epoch(2000, 1, 500));
        let json = t.to_json();
        assert!(json.contains("\"name\":\"power.total_mw\",\"ph\":\"C\""));
        assert!(json.contains("\"mW\":123.456"));
        assert!(json.contains("\"name\":\"energy.epoch_pj\",\"ph\":\"C\""));
        assert!(json.contains("\"act_pre\":100"));
        // Cumulative track integrates the epoch deltas: 500 after epoch 0,
        // then 500 + 700 after epoch 1.
        assert!(json.contains("\"pJ\":500"));
        assert!(json.contains("\"pJ\":1200"));
        assert!(json.contains(&format!("\"pid\":{POWER_PID}")));
        assert!(json.contains("power rails"));
    }

    #[test]
    fn rank_residency_gets_per_rank_counter_tracks() {
        let mut t = PerfettoTrace::new();
        t.add_sim_event(&TraceEvent::PowerRank {
            cycle: 1000,
            rank: 2,
            act_stby: 600,
            pre_stby: 300,
            pdn: 100,
            bg_uw: 55_500,
        });
        let json = t.to_json();
        assert!(json.contains("\"name\":\"rank2.residency\",\"ph\":\"C\""));
        assert!(json.contains("\"act_stby\":600,\"pre_stby\":300,\"pdn\":100"));
        assert!(json.contains("\"name\":\"rank2.power_mw\",\"ph\":\"C\""));
        assert!(json.contains("\"bg_mW\":55.500"));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{json}");
    }
}
