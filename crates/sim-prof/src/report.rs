//! Rolled-up profile reports: per-span aggregates, ranking and rendering.

use std::fmt::Write as _;

use sim_obs::MetricsRegistry;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (`domain.name`, matching docs/metrics.md conventions).
    pub name: String,
    /// Times the span closed.
    pub calls: u64,
    /// Total nanoseconds inside the span (including children).
    pub total_ns: u64,
    /// Nanoseconds spent in child spans.
    pub child_ns: u64,
}

impl SpanStat {
    /// Nanoseconds spent in the span itself, excluding child spans.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Average nanoseconds per call (0 when never called).
    pub fn avg_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// A snapshot of every span aggregate, as returned by
/// [`crate::report`] / [`crate::take_report`].
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// One entry per distinct span name, in first-open order.
    pub spans: Vec<SpanStat>,
}

impl ProfileReport {
    /// Whether any span closed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans ranked by self time, heaviest first (ties broken by name so
    /// the order is deterministic).
    pub fn ranked(&self) -> Vec<&SpanStat> {
        let mut v: Vec<&SpanStat> = self.spans.iter().collect();
        v.sort_by(|a, b| b.self_ns().cmp(&a.self_ns()).then(a.name.cmp(&b.name)));
        v
    }

    /// The `k` spans with the most self time.
    pub fn top(&self, k: usize) -> Vec<&SpanStat> {
        let mut v = self.ranked();
        v.truncate(k);
        v
    }

    /// Renders an aligned text table ranked by self time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>14} {:>14} {:>12}",
            "span", "calls", "total ms", "self ms", "avg ns/call"
        );
        for s in self.ranked() {
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>14.3} {:>14.3} {:>12}",
                s.name,
                s.calls,
                s.total_ns as f64 / 1e6,
                s.self_ns() as f64 / 1e6,
                s.avg_ns()
            );
        }
        out
    }

    /// Publishes the report into a metrics registry: `prof.spans` and
    /// `prof.span_calls` totals, plus per-span `prof.<span>.calls`,
    /// `prof.<span>.total_nanos` and `prof.<span>.self_nanos` counters
    /// (dynamic names, declared as such in docs/metrics.md).
    pub fn publish_to(&self, reg: &mut MetricsRegistry) {
        let spans = reg.counter("prof.spans");
        reg.set_counter(spans, self.spans.len() as u64);
        let calls = reg.counter("prof.span_calls");
        reg.set_counter(calls, self.spans.iter().map(|s| s.calls).sum());
        for s in &self.spans {
            let id = reg.counter(&format!("prof.{}.calls", s.name));
            reg.set_counter(id, s.calls);
            let id = reg.counter(&format!("prof.{}.total_nanos", s.name));
            reg.set_counter(id, s.total_ns);
            let id = reg.counter(&format!("prof.{}.self_nanos", s.name));
            reg.set_counter(id, s.self_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(name: &str, calls: u64, total_ns: u64, child_ns: u64) -> SpanStat {
        SpanStat {
            name: name.to_string(),
            calls,
            total_ns,
            child_ns,
        }
    }

    fn sample() -> ProfileReport {
        ProfileReport {
            spans: vec![
                stat("cpu.tick", 10, 1_000, 600),
                stat("dram.tick", 40, 600, 50),
                stat("cache.access", 100, 50, 0),
            ],
        }
    }

    #[test]
    fn ranking_is_by_self_time() {
        let rep = sample();
        let names: Vec<&str> = rep.ranked().iter().map(|s| s.name.as_str()).collect();
        // self: dram.tick 550, cpu.tick 400, cache.access 50.
        assert_eq!(names, vec!["dram.tick", "cpu.tick", "cache.access"]);
        assert_eq!(rep.top(1)[0].name, "dram.tick");
    }

    #[test]
    fn self_and_avg_derivations() {
        let s = stat("x.y", 4, 100, 30);
        assert_eq!(s.self_ns(), 70);
        assert_eq!(s.avg_ns(), 25);
        let never = stat("x.z", 0, 0, 0);
        assert_eq!(never.avg_ns(), 0);
        let clamped = stat("x.w", 1, 10, 20);
        assert_eq!(clamped.self_ns(), 0, "self time saturates at zero");
    }

    #[test]
    fn render_lists_every_span() {
        let text = sample().render();
        for name in ["dram.tick", "cpu.tick", "cache.access"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn publish_to_registers_totals_and_per_span_counters() {
        let rep = sample();
        let mut reg = MetricsRegistry::new();
        rep.publish_to(&mut reg);
        assert_eq!(reg.counter_value("prof.spans"), Some(3));
        assert_eq!(reg.counter_value("prof.span_calls"), Some(150));
        assert_eq!(reg.counter_value("prof.dram.tick.self_nanos"), Some(550));
    }
}
