/root/repo/target/release/deps/fig15-3cd2327653335c9c.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-3cd2327653335c9c: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
