/root/repo/target/release/deps/table1-e49b4c36dc2a4a4b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e49b4c36dc2a4a4b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
