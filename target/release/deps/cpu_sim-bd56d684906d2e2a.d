/root/repo/target/release/deps/cpu_sim-bd56d684906d2e2a.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/release/deps/libcpu_sim-bd56d684906d2e2a.rlib: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/release/deps/libcpu_sim-bd56d684906d2e2a.rmeta: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
