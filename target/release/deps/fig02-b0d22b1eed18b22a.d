/root/repo/target/release/deps/fig02-b0d22b1eed18b22a.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-b0d22b1eed18b22a: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
