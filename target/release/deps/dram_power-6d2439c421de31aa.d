/root/repo/target/release/deps/dram_power-6d2439c421de31aa.d: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

/root/repo/target/release/deps/libdram_power-6d2439c421de31aa.rlib: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

/root/repo/target/release/deps/libdram_power-6d2439c421de31aa.rmeta: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

crates/dram-power/src/lib.rs:
crates/dram-power/src/accounting.rs:
crates/dram-power/src/activation_energy.rs:
crates/dram-power/src/breakdown.rs:
crates/dram-power/src/overheads.rs:
crates/dram-power/src/params.rs:
