/root/repo/target/release/deps/workloads-4aa1793946105904.d: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libworkloads-4aa1793946105904.rlib: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libworkloads-4aa1793946105904.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analysis.rs:
crates/workloads/src/benches.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/trace.rs:
