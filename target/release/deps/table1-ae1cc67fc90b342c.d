/root/repo/target/release/deps/table1-ae1cc67fc90b342c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ae1cc67fc90b342c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
