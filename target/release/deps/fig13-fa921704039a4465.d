/root/repo/target/release/deps/fig13-fa921704039a4465.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-fa921704039a4465: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
