/root/repo/target/release/deps/mem_model-b195561905a54c59.d: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

/root/repo/target/release/deps/mem_model-b195561905a54c59: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/addr.rs:
crates/mem-model/src/geometry.rs:
crates/mem-model/src/mapping.rs:
crates/mem-model/src/mask.rs:
crates/mem-model/src/request.rs:
crates/mem-model/src/rng.rs:
