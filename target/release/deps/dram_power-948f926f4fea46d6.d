/root/repo/target/release/deps/dram_power-948f926f4fea46d6.d: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

/root/repo/target/release/deps/dram_power-948f926f4fea46d6: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

crates/dram-power/src/lib.rs:
crates/dram-power/src/accounting.rs:
crates/dram-power/src/activation_energy.rs:
crates/dram-power/src/breakdown.rs:
crates/dram-power/src/overheads.rs:
crates/dram-power/src/params.rs:
