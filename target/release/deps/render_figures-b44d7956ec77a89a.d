/root/repo/target/release/deps/render_figures-b44d7956ec77a89a.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/release/deps/render_figures-b44d7956ec77a89a: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
