/root/repo/target/release/deps/fig10-8bc477998985b0a5.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-8bc477998985b0a5: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
