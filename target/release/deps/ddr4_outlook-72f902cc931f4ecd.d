/root/repo/target/release/deps/ddr4_outlook-72f902cc931f4ecd.d: crates/bench/src/bin/ddr4_outlook.rs

/root/repo/target/release/deps/ddr4_outlook-72f902cc931f4ecd: crates/bench/src/bin/ddr4_outlook.rs

crates/bench/src/bin/ddr4_outlook.rs:
