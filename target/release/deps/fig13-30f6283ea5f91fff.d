/root/repo/target/release/deps/fig13-30f6283ea5f91fff.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-30f6283ea5f91fff: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
