/root/repo/target/release/deps/fig15-f9887f383aa181ab.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-f9887f383aa181ab: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
