/root/repo/target/release/deps/pra_repro-d57fd856f40da030.d: src/lib.rs

/root/repo/target/release/deps/libpra_repro-d57fd856f40da030.rlib: src/lib.rs

/root/repo/target/release/deps/libpra_repro-d57fd856f40da030.rmeta: src/lib.rs

src/lib.rs:
