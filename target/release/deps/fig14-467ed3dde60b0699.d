/root/repo/target/release/deps/fig14-467ed3dde60b0699.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-467ed3dde60b0699: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
