/root/repo/target/release/deps/ablation-496d14782b419768.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-496d14782b419768: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
