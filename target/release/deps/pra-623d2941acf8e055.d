/root/repo/target/release/deps/pra-623d2941acf8e055.d: crates/cli/src/main.rs

/root/repo/target/release/deps/pra-623d2941acf8e055: crates/cli/src/main.rs

crates/cli/src/main.rs:
