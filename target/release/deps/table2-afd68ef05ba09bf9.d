/root/repo/target/release/deps/table2-afd68ef05ba09bf9.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-afd68ef05ba09bf9: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
