/root/repo/target/release/deps/workloads-88aceed7c3cbd5f8.d: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/workloads-88aceed7c3cbd5f8: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analysis.rs:
crates/workloads/src/benches.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/trace.rs:
