/root/repo/target/release/deps/pra-7b470cfd62864444.d: crates/cli/src/main.rs

/root/repo/target/release/deps/pra-7b470cfd62864444: crates/cli/src/main.rs

crates/cli/src/main.rs:
