/root/repo/target/release/deps/fig12-ee6534a14eab397a.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-ee6534a14eab397a: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
