/root/repo/target/release/deps/related_sds-1609ec41d20259c1.d: crates/bench/src/bin/related_sds.rs

/root/repo/target/release/deps/related_sds-1609ec41d20259c1: crates/bench/src/bin/related_sds.rs

crates/bench/src/bin/related_sds.rs:
