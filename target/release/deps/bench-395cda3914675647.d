/root/repo/target/release/deps/bench-395cda3914675647.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-395cda3914675647.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-395cda3914675647.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
