/root/repo/target/release/deps/sim_throughput-659dbb904c6114c4.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-659dbb904c6114c4: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
