/root/repo/target/release/deps/policy_study-a0225333b3f6a606.d: crates/bench/src/bin/policy_study.rs

/root/repo/target/release/deps/policy_study-a0225333b3f6a606: crates/bench/src/bin/policy_study.rs

crates/bench/src/bin/policy_study.rs:
