/root/repo/target/release/deps/sweep_dirty-13ed1319e3ca5392.d: crates/bench/src/bin/sweep_dirty.rs

/root/repo/target/release/deps/sweep_dirty-13ed1319e3ca5392: crates/bench/src/bin/sweep_dirty.rs

crates/bench/src/bin/sweep_dirty.rs:
