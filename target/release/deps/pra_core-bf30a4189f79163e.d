/root/repo/target/release/deps/pra_core-bf30a4189f79163e.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

/root/repo/target/release/deps/libpra_core-bf30a4189f79163e.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

/root/repo/target/release/deps/libpra_core-bf30a4189f79163e.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/pra.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/sds.rs:
crates/core/src/system.rs:
crates/core/src/timing_diagram.rs:
