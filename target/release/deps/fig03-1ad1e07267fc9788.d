/root/repo/target/release/deps/fig03-1ad1e07267fc9788.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-1ad1e07267fc9788: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
