/root/repo/target/release/deps/pra_cli-033473d82502c6e4.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/pra_cli-033473d82502c6e4: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
