/root/repo/target/release/deps/related_sds-59c5830f800d5d84.d: crates/bench/src/bin/related_sds.rs

/root/repo/target/release/deps/related_sds-59c5830f800d5d84: crates/bench/src/bin/related_sds.rs

crates/bench/src/bin/related_sds.rs:
