/root/repo/target/release/deps/fig14-42e64a57cb024f5d.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-42e64a57cb024f5d: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
