/root/repo/target/release/deps/fig12-e1fcf604b4a99555.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-e1fcf604b4a99555: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
