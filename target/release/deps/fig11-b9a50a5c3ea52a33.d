/root/repo/target/release/deps/fig11-b9a50a5c3ea52a33.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-b9a50a5c3ea52a33: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
