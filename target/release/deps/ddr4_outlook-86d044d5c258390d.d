/root/repo/target/release/deps/ddr4_outlook-86d044d5c258390d.d: crates/bench/src/bin/ddr4_outlook.rs

/root/repo/target/release/deps/ddr4_outlook-86d044d5c258390d: crates/bench/src/bin/ddr4_outlook.rs

crates/bench/src/bin/ddr4_outlook.rs:
