/root/repo/target/release/deps/fig11-3455b70fab74243c.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-3455b70fab74243c: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
