/root/repo/target/release/deps/fig09-5b5e38679d7b98e9.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-5b5e38679d7b98e9: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
