/root/repo/target/release/deps/fig07-b32caf34570835d6.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-b32caf34570835d6: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
