/root/repo/target/release/deps/cache_sim-d527b53a2b97ec83.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/release/deps/libcache_sim-d527b53a2b97ec83.rlib: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/release/deps/libcache_sim-d527b53a2b97ec83.rmeta: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
