/root/repo/target/release/deps/workloads-e76ba670e1d31974.d: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libworkloads-e76ba670e1d31974.rlib: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libworkloads-e76ba670e1d31974.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analysis.rs:
crates/workloads/src/benches.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/trace.rs:
