/root/repo/target/release/deps/cpu_sim-27ff494584412ec2.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/release/deps/cpu_sim-27ff494584412ec2: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
