/root/repo/target/release/deps/sweep_footprint-326d02e2616cb2d3.d: crates/bench/src/bin/sweep_footprint.rs

/root/repo/target/release/deps/sweep_footprint-326d02e2616cb2d3: crates/bench/src/bin/sweep_footprint.rs

crates/bench/src/bin/sweep_footprint.rs:
