/root/repo/target/release/deps/table3-2fa1fe8164d0430f.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-2fa1fe8164d0430f: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
