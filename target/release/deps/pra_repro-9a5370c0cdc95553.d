/root/repo/target/release/deps/pra_repro-9a5370c0cdc95553.d: src/lib.rs

/root/repo/target/release/deps/libpra_repro-9a5370c0cdc95553.rlib: src/lib.rs

/root/repo/target/release/deps/libpra_repro-9a5370c0cdc95553.rmeta: src/lib.rs

src/lib.rs:
