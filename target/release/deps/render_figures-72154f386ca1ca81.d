/root/repo/target/release/deps/render_figures-72154f386ca1ca81.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/release/deps/render_figures-72154f386ca1ca81: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
