/root/repo/target/release/deps/table3-e65c479c42cf5698.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-e65c479c42cf5698: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
