/root/repo/target/release/deps/dram_sim-26fdd08ef27f5019.d: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

/root/repo/target/release/deps/libdram_sim-26fdd08ef27f5019.rlib: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

/root/repo/target/release/deps/libdram_sim-26fdd08ef27f5019.rmeta: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

crates/dram-sim/src/lib.rs:
crates/dram-sim/src/bank.rs:
crates/dram-sim/src/channel.rs:
crates/dram-sim/src/checker.rs:
crates/dram-sim/src/config.rs:
crates/dram-sim/src/memory_system.rs:
crates/dram-sim/src/rank.rs:
crates/dram-sim/src/scheme.rs:
crates/dram-sim/src/stats.rs:
crates/dram-sim/src/timing.rs:
