/root/repo/target/release/deps/sweep_dirty-2bb423696842687a.d: crates/bench/src/bin/sweep_dirty.rs

/root/repo/target/release/deps/sweep_dirty-2bb423696842687a: crates/bench/src/bin/sweep_dirty.rs

crates/bench/src/bin/sweep_dirty.rs:
