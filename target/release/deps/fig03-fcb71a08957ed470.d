/root/repo/target/release/deps/fig03-fcb71a08957ed470.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-fcb71a08957ed470: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
