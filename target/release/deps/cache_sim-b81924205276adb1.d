/root/repo/target/release/deps/cache_sim-b81924205276adb1.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/release/deps/libcache_sim-b81924205276adb1.rlib: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/release/deps/libcache_sim-b81924205276adb1.rmeta: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
