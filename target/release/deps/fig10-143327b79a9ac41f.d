/root/repo/target/release/deps/fig10-143327b79a9ac41f.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-143327b79a9ac41f: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
