/root/repo/target/release/deps/fig02-4a16f94ff5e5a0e3.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-4a16f94ff5e5a0e3: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
