/root/repo/target/release/deps/cache_sim-20c4e2069d635989.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/release/deps/cache_sim-20c4e2069d635989: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
