/root/repo/target/release/deps/pra_cli-628c06eaf8ee0d40.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libpra_cli-628c06eaf8ee0d40.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libpra_cli-628c06eaf8ee0d40.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
