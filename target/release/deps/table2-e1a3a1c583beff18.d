/root/repo/target/release/deps/table2-e1a3a1c583beff18.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e1a3a1c583beff18: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
