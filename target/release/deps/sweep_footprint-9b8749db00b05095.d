/root/repo/target/release/deps/sweep_footprint-9b8749db00b05095.d: crates/bench/src/bin/sweep_footprint.rs

/root/repo/target/release/deps/sweep_footprint-9b8749db00b05095: crates/bench/src/bin/sweep_footprint.rs

crates/bench/src/bin/sweep_footprint.rs:
