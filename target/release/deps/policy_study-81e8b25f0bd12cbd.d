/root/repo/target/release/deps/policy_study-81e8b25f0bd12cbd.d: crates/bench/src/bin/policy_study.rs

/root/repo/target/release/deps/policy_study-81e8b25f0bd12cbd: crates/bench/src/bin/policy_study.rs

crates/bench/src/bin/policy_study.rs:
