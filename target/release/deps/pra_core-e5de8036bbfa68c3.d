/root/repo/target/release/deps/pra_core-e5de8036bbfa68c3.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/sds.rs crates/core/src/timing_diagram.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/system.rs

/root/repo/target/release/deps/libpra_core-e5de8036bbfa68c3.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/sds.rs crates/core/src/timing_diagram.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/system.rs

/root/repo/target/release/deps/libpra_core-e5de8036bbfa68c3.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/sds.rs crates/core/src/timing_diagram.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/pra.rs:
crates/core/src/sds.rs:
crates/core/src/timing_diagram.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/system.rs:
