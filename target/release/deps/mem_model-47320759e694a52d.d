/root/repo/target/release/deps/mem_model-47320759e694a52d.d: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

/root/repo/target/release/deps/libmem_model-47320759e694a52d.rlib: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

/root/repo/target/release/deps/libmem_model-47320759e694a52d.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/addr.rs:
crates/mem-model/src/geometry.rs:
crates/mem-model/src/mapping.rs:
crates/mem-model/src/mask.rs:
crates/mem-model/src/request.rs:
crates/mem-model/src/rng.rs:
