/root/repo/target/release/deps/cpu_sim-2fb337c2e60085af.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/release/deps/libcpu_sim-2fb337c2e60085af.rlib: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/release/deps/libcpu_sim-2fb337c2e60085af.rmeta: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
