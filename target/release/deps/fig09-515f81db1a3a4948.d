/root/repo/target/release/deps/fig09-515f81db1a3a4948.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-515f81db1a3a4948: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
