/root/repo/target/release/deps/ablation-e7dd18d85fcfdac1.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-e7dd18d85fcfdac1: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
