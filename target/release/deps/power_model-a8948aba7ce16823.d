/root/repo/target/release/deps/power_model-a8948aba7ce16823.d: crates/bench/benches/power_model.rs

/root/repo/target/release/deps/power_model-a8948aba7ce16823: crates/bench/benches/power_model.rs

crates/bench/benches/power_model.rs:
