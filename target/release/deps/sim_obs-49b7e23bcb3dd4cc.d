/root/repo/target/release/deps/sim_obs-49b7e23bcb3dd4cc.d: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

/root/repo/target/release/deps/sim_obs-49b7e23bcb3dd4cc: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

crates/sim-obs/src/lib.rs:
crates/sim-obs/src/event.rs:
crates/sim-obs/src/hist.rs:
crates/sim-obs/src/registry.rs:
crates/sim-obs/src/sink.rs:
