/root/repo/target/release/deps/sim_obs-d485ea618cd9d21f.d: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

/root/repo/target/release/deps/libsim_obs-d485ea618cd9d21f.rlib: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

/root/repo/target/release/deps/libsim_obs-d485ea618cd9d21f.rmeta: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

crates/sim-obs/src/lib.rs:
crates/sim-obs/src/event.rs:
crates/sim-obs/src/hist.rs:
crates/sim-obs/src/registry.rs:
crates/sim-obs/src/sink.rs:
