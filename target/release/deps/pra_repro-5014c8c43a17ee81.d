/root/repo/target/release/deps/pra_repro-5014c8c43a17ee81.d: src/lib.rs

/root/repo/target/release/deps/pra_repro-5014c8c43a17ee81: src/lib.rs

src/lib.rs:
