/root/repo/target/release/deps/bench-d3d4ff7351e6fa47.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/bench-d3d4ff7351e6fa47: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
