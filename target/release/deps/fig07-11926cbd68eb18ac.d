/root/repo/target/release/deps/fig07-11926cbd68eb18ac.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-11926cbd68eb18ac: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
