/root/repo/target/release/deps/dram_sim-2282d0567240eddb.d: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

/root/repo/target/release/deps/dram_sim-2282d0567240eddb: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

crates/dram-sim/src/lib.rs:
crates/dram-sim/src/bank.rs:
crates/dram-sim/src/channel.rs:
crates/dram-sim/src/checker.rs:
crates/dram-sim/src/config.rs:
crates/dram-sim/src/memory_system.rs:
crates/dram-sim/src/obs.rs:
crates/dram-sim/src/rank.rs:
crates/dram-sim/src/scheme.rs:
crates/dram-sim/src/stats.rs:
crates/dram-sim/src/timing.rs:
