/root/repo/target/debug/deps/ddr4_outlook-127b819db5d3d39b.d: crates/bench/src/bin/ddr4_outlook.rs

/root/repo/target/debug/deps/ddr4_outlook-127b819db5d3d39b: crates/bench/src/bin/ddr4_outlook.rs

crates/bench/src/bin/ddr4_outlook.rs:
