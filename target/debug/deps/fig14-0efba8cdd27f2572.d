/root/repo/target/debug/deps/fig14-0efba8cdd27f2572.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-0efba8cdd27f2572: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
