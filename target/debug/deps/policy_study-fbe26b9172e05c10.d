/root/repo/target/debug/deps/policy_study-fbe26b9172e05c10.d: crates/bench/src/bin/policy_study.rs

/root/repo/target/debug/deps/policy_study-fbe26b9172e05c10: crates/bench/src/bin/policy_study.rs

crates/bench/src/bin/policy_study.rs:
