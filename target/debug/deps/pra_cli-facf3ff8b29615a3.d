/root/repo/target/debug/deps/pra_cli-facf3ff8b29615a3.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libpra_cli-facf3ff8b29615a3.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libpra_cli-facf3ff8b29615a3.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
