/root/repo/target/debug/deps/sweep_dirty-c954230791dc7ff7.d: crates/bench/src/bin/sweep_dirty.rs

/root/repo/target/debug/deps/sweep_dirty-c954230791dc7ff7: crates/bench/src/bin/sweep_dirty.rs

crates/bench/src/bin/sweep_dirty.rs:
