/root/repo/target/debug/deps/fig14-20fb2632f5802493.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-20fb2632f5802493: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
