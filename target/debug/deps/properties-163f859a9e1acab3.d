/root/repo/target/debug/deps/properties-163f859a9e1acab3.d: crates/cache-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-163f859a9e1acab3.rmeta: crates/cache-sim/tests/properties.rs Cargo.toml

crates/cache-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
