/root/repo/target/debug/deps/power_model-0311b22aeaab3022.d: crates/bench/benches/power_model.rs Cargo.toml

/root/repo/target/debug/deps/libpower_model-0311b22aeaab3022.rmeta: crates/bench/benches/power_model.rs Cargo.toml

crates/bench/benches/power_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
