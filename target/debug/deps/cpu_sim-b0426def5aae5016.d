/root/repo/target/debug/deps/cpu_sim-b0426def5aae5016.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/debug/deps/cpu_sim-b0426def5aae5016: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
