/root/repo/target/debug/deps/cache_sim-2fc312ae2c166c5d.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libcache_sim-2fc312ae2c166c5d.rmeta: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs Cargo.toml

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
