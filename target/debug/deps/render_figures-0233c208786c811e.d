/root/repo/target/debug/deps/render_figures-0233c208786c811e.d: crates/bench/src/bin/render_figures.rs Cargo.toml

/root/repo/target/debug/deps/librender_figures-0233c208786c811e.rmeta: crates/bench/src/bin/render_figures.rs Cargo.toml

crates/bench/src/bin/render_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
