/root/repo/target/debug/deps/bench-1c134a9c7d17a3fd.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bench-1c134a9c7d17a3fd: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
