/root/repo/target/debug/deps/pra_cli-6d6fc24f605a3d8e.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/pra_cli-6d6fc24f605a3d8e: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
