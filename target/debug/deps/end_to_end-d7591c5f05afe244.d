/root/repo/target/debug/deps/end_to_end-d7591c5f05afe244.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d7591c5f05afe244: tests/end_to_end.rs

tests/end_to_end.rs:
