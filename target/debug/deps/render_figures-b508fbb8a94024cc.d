/root/repo/target/debug/deps/render_figures-b508fbb8a94024cc.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/debug/deps/render_figures-b508fbb8a94024cc: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
