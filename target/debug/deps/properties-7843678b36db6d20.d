/root/repo/target/debug/deps/properties-7843678b36db6d20.d: crates/dram-power/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7843678b36db6d20.rmeta: crates/dram-power/tests/properties.rs Cargo.toml

crates/dram-power/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
