/root/repo/target/debug/deps/properties-1b7f87f2e401a0b3.d: crates/cpu-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1b7f87f2e401a0b3.rmeta: crates/cpu-sim/tests/properties.rs Cargo.toml

crates/cpu-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
