/root/repo/target/debug/deps/cache_sim-0ebb4a6474053a89.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/debug/deps/cache_sim-0ebb4a6474053a89: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
