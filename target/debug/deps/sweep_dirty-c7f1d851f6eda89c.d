/root/repo/target/debug/deps/sweep_dirty-c7f1d851f6eda89c.d: crates/bench/src/bin/sweep_dirty.rs

/root/repo/target/debug/deps/sweep_dirty-c7f1d851f6eda89c: crates/bench/src/bin/sweep_dirty.rs

crates/bench/src/bin/sweep_dirty.rs:
