/root/repo/target/debug/deps/properties-dbb329614daac8e4.d: crates/dram-power/tests/properties.rs

/root/repo/target/debug/deps/properties-dbb329614daac8e4: crates/dram-power/tests/properties.rs

crates/dram-power/tests/properties.rs:
