/root/repo/target/debug/deps/fig02-0a25438af5b4c207.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-0a25438af5b4c207: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
