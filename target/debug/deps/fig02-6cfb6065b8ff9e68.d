/root/repo/target/debug/deps/fig02-6cfb6065b8ff9e68.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-6cfb6065b8ff9e68: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
