/root/repo/target/debug/deps/pra_repro-d2b15fb077bfb2be.d: src/lib.rs

/root/repo/target/debug/deps/pra_repro-d2b15fb077bfb2be: src/lib.rs

src/lib.rs:
