/root/repo/target/debug/deps/table3-7d8344ed4c05239c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-7d8344ed4c05239c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
