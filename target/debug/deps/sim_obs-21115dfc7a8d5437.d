/root/repo/target/debug/deps/sim_obs-21115dfc7a8d5437.d: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libsim_obs-21115dfc7a8d5437.rmeta: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs Cargo.toml

crates/sim-obs/src/lib.rs:
crates/sim-obs/src/event.rs:
crates/sim-obs/src/hist.rs:
crates/sim-obs/src/registry.rs:
crates/sim-obs/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
