/root/repo/target/debug/deps/dram_sim-a0465ba3ad040940.d: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

/root/repo/target/debug/deps/libdram_sim-a0465ba3ad040940.rlib: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

/root/repo/target/debug/deps/libdram_sim-a0465ba3ad040940.rmeta: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs

crates/dram-sim/src/lib.rs:
crates/dram-sim/src/bank.rs:
crates/dram-sim/src/channel.rs:
crates/dram-sim/src/checker.rs:
crates/dram-sim/src/config.rs:
crates/dram-sim/src/memory_system.rs:
crates/dram-sim/src/obs.rs:
crates/dram-sim/src/rank.rs:
crates/dram-sim/src/scheme.rs:
crates/dram-sim/src/stats.rs:
crates/dram-sim/src/timing.rs:
