/root/repo/target/debug/deps/fig07-ef38b49c7f0ef10c.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-ef38b49c7f0ef10c: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
