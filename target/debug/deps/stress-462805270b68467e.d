/root/repo/target/debug/deps/stress-462805270b68467e.d: crates/dram-sim/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-462805270b68467e.rmeta: crates/dram-sim/tests/stress.rs Cargo.toml

crates/dram-sim/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
