/root/repo/target/debug/deps/workloads-5fc9a178f8754a74.d: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libworkloads-5fc9a178f8754a74.rlib: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libworkloads-5fc9a178f8754a74.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analysis.rs:
crates/workloads/src/benches.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/trace.rs:
