/root/repo/target/debug/deps/related_sds-c9a72d28e4a9108e.d: crates/bench/src/bin/related_sds.rs Cargo.toml

/root/repo/target/debug/deps/librelated_sds-c9a72d28e4a9108e.rmeta: crates/bench/src/bin/related_sds.rs Cargo.toml

crates/bench/src/bin/related_sds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
