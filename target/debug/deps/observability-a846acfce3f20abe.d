/root/repo/target/debug/deps/observability-a846acfce3f20abe.d: crates/dram-sim/tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-a846acfce3f20abe.rmeta: crates/dram-sim/tests/observability.rs Cargo.toml

crates/dram-sim/tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
