/root/repo/target/debug/deps/pra_cli-df50af5f27dd5147.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libpra_cli-df50af5f27dd5147.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libpra_cli-df50af5f27dd5147.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
