/root/repo/target/debug/deps/sweep_footprint-bcf56f31fd7c17f8.d: crates/bench/src/bin/sweep_footprint.rs

/root/repo/target/debug/deps/sweep_footprint-bcf56f31fd7c17f8: crates/bench/src/bin/sweep_footprint.rs

crates/bench/src/bin/sweep_footprint.rs:
