/root/repo/target/debug/deps/mem_model-800f5ca31bd27572.d: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

/root/repo/target/debug/deps/libmem_model-800f5ca31bd27572.rlib: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

/root/repo/target/debug/deps/libmem_model-800f5ca31bd27572.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/addr.rs:
crates/mem-model/src/geometry.rs:
crates/mem-model/src/mapping.rs:
crates/mem-model/src/mask.rs:
crates/mem-model/src/request.rs:
crates/mem-model/src/rng.rs:
