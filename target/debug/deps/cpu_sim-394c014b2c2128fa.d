/root/repo/target/debug/deps/cpu_sim-394c014b2c2128fa.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libcpu_sim-394c014b2c2128fa.rmeta: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs Cargo.toml

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
