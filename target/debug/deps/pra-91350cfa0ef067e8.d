/root/repo/target/debug/deps/pra-91350cfa0ef067e8.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/pra-91350cfa0ef067e8: crates/cli/src/main.rs

crates/cli/src/main.rs:
