/root/repo/target/debug/deps/stress-817ce0156203c996.d: crates/dram-sim/tests/stress.rs

/root/repo/target/debug/deps/stress-817ce0156203c996: crates/dram-sim/tests/stress.rs

crates/dram-sim/tests/stress.rs:
