/root/repo/target/debug/deps/properties-d77fe215f59d2006.d: crates/mem-model/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d77fe215f59d2006.rmeta: crates/mem-model/tests/properties.rs Cargo.toml

crates/mem-model/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
