/root/repo/target/debug/deps/timing_edges-5149173e09f9312c.d: crates/dram-sim/tests/timing_edges.rs Cargo.toml

/root/repo/target/debug/deps/libtiming_edges-5149173e09f9312c.rmeta: crates/dram-sim/tests/timing_edges.rs Cargo.toml

crates/dram-sim/tests/timing_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
