/root/repo/target/debug/deps/properties-67edcc5f2d9b2f21.d: crates/mem-model/tests/properties.rs

/root/repo/target/debug/deps/properties-67edcc5f2d9b2f21: crates/mem-model/tests/properties.rs

crates/mem-model/tests/properties.rs:
