/root/repo/target/debug/deps/cache_sim-cab5862f16b71e40.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/debug/deps/libcache_sim-cab5862f16b71e40.rlib: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/debug/deps/libcache_sim-cab5862f16b71e40.rmeta: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
