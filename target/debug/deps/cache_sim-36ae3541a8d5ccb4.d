/root/repo/target/debug/deps/cache_sim-36ae3541a8d5ccb4.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/debug/deps/cache_sim-36ae3541a8d5ccb4: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
