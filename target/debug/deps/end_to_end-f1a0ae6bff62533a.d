/root/repo/target/debug/deps/end_to_end-f1a0ae6bff62533a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f1a0ae6bff62533a: tests/end_to_end.rs

tests/end_to_end.rs:
