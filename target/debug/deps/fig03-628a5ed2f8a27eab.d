/root/repo/target/debug/deps/fig03-628a5ed2f8a27eab.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-628a5ed2f8a27eab: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
