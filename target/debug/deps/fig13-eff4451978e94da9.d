/root/repo/target/debug/deps/fig13-eff4451978e94da9.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-eff4451978e94da9: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
