/root/repo/target/debug/deps/ablation-4af6ef45d8e2b0fb.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4af6ef45d8e2b0fb: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
