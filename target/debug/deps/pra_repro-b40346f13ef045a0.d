/root/repo/target/debug/deps/pra_repro-b40346f13ef045a0.d: src/lib.rs

/root/repo/target/debug/deps/pra_repro-b40346f13ef045a0: src/lib.rs

src/lib.rs:
