/root/repo/target/debug/deps/table2-3fa6183535aeb922.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3fa6183535aeb922: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
