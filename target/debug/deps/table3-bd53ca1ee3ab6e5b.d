/root/repo/target/debug/deps/table3-bd53ca1ee3ab6e5b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-bd53ca1ee3ab6e5b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
