/root/repo/target/debug/deps/fig09-2689cc64a5649433.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/debug/deps/libfig09-2689cc64a5649433.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
