/root/repo/target/debug/deps/table1-d3ef6278be5caf20.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d3ef6278be5caf20: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
