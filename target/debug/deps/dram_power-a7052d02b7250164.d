/root/repo/target/debug/deps/dram_power-a7052d02b7250164.d: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

/root/repo/target/debug/deps/libdram_power-a7052d02b7250164.rlib: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

/root/repo/target/debug/deps/libdram_power-a7052d02b7250164.rmeta: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

crates/dram-power/src/lib.rs:
crates/dram-power/src/accounting.rs:
crates/dram-power/src/activation_energy.rs:
crates/dram-power/src/breakdown.rs:
crates/dram-power/src/overheads.rs:
crates/dram-power/src/params.rs:
