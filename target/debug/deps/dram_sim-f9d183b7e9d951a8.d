/root/repo/target/debug/deps/dram_sim-f9d183b7e9d951a8.d: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libdram_sim-f9d183b7e9d951a8.rmeta: crates/dram-sim/src/lib.rs crates/dram-sim/src/bank.rs crates/dram-sim/src/channel.rs crates/dram-sim/src/checker.rs crates/dram-sim/src/config.rs crates/dram-sim/src/memory_system.rs crates/dram-sim/src/obs.rs crates/dram-sim/src/rank.rs crates/dram-sim/src/scheme.rs crates/dram-sim/src/stats.rs crates/dram-sim/src/timing.rs Cargo.toml

crates/dram-sim/src/lib.rs:
crates/dram-sim/src/bank.rs:
crates/dram-sim/src/channel.rs:
crates/dram-sim/src/checker.rs:
crates/dram-sim/src/config.rs:
crates/dram-sim/src/memory_system.rs:
crates/dram-sim/src/obs.rs:
crates/dram-sim/src/rank.rs:
crates/dram-sim/src/scheme.rs:
crates/dram-sim/src/stats.rs:
crates/dram-sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
