/root/repo/target/debug/deps/fig13-2da7291fcbac3690.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-2da7291fcbac3690: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
