/root/repo/target/debug/deps/calibration-0ba1b1747d224728.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-0ba1b1747d224728: tests/calibration.rs

tests/calibration.rs:
