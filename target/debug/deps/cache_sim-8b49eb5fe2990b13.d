/root/repo/target/debug/deps/cache_sim-8b49eb5fe2990b13.d: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/debug/deps/libcache_sim-8b49eb5fe2990b13.rlib: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

/root/repo/target/debug/deps/libcache_sim-8b49eb5fe2990b13.rmeta: crates/cache-sim/src/lib.rs crates/cache-sim/src/cache.rs crates/cache-sim/src/dbi.rs crates/cache-sim/src/hierarchy.rs

crates/cache-sim/src/lib.rs:
crates/cache-sim/src/cache.rs:
crates/cache-sim/src/dbi.rs:
crates/cache-sim/src/hierarchy.rs:
