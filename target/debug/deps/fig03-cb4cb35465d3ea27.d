/root/repo/target/debug/deps/fig03-cb4cb35465d3ea27.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-cb4cb35465d3ea27: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
