/root/repo/target/debug/deps/bench-928552a2e72fd846.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-928552a2e72fd846.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-928552a2e72fd846.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
