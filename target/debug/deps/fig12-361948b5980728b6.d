/root/repo/target/debug/deps/fig12-361948b5980728b6.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-361948b5980728b6: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
