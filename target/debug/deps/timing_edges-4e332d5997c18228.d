/root/repo/target/debug/deps/timing_edges-4e332d5997c18228.d: crates/dram-sim/tests/timing_edges.rs

/root/repo/target/debug/deps/timing_edges-4e332d5997c18228: crates/dram-sim/tests/timing_edges.rs

crates/dram-sim/tests/timing_edges.rs:
