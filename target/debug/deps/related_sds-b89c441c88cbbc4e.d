/root/repo/target/debug/deps/related_sds-b89c441c88cbbc4e.d: crates/bench/src/bin/related_sds.rs

/root/repo/target/debug/deps/related_sds-b89c441c88cbbc4e: crates/bench/src/bin/related_sds.rs

crates/bench/src/bin/related_sds.rs:
