/root/repo/target/debug/deps/policy_study-39d4a3e00e5a9101.d: crates/bench/src/bin/policy_study.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_study-39d4a3e00e5a9101.rmeta: crates/bench/src/bin/policy_study.rs Cargo.toml

crates/bench/src/bin/policy_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
