/root/repo/target/debug/deps/fig15-03c499a8f9e37841.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-03c499a8f9e37841: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
