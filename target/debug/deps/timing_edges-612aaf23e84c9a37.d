/root/repo/target/debug/deps/timing_edges-612aaf23e84c9a37.d: crates/dram-sim/tests/timing_edges.rs

/root/repo/target/debug/deps/timing_edges-612aaf23e84c9a37: crates/dram-sim/tests/timing_edges.rs

crates/dram-sim/tests/timing_edges.rs:
