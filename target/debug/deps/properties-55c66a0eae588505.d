/root/repo/target/debug/deps/properties-55c66a0eae588505.d: crates/cache-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-55c66a0eae588505: crates/cache-sim/tests/properties.rs

crates/cache-sim/tests/properties.rs:
