/root/repo/target/debug/deps/table1-fab6ccd07ff1f5e5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-fab6ccd07ff1f5e5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
