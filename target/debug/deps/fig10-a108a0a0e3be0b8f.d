/root/repo/target/debug/deps/fig10-a108a0a0e3be0b8f.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-a108a0a0e3be0b8f.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
