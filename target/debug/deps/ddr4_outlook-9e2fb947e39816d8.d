/root/repo/target/debug/deps/ddr4_outlook-9e2fb947e39816d8.d: crates/bench/src/bin/ddr4_outlook.rs Cargo.toml

/root/repo/target/debug/deps/libddr4_outlook-9e2fb947e39816d8.rmeta: crates/bench/src/bin/ddr4_outlook.rs Cargo.toml

crates/bench/src/bin/ddr4_outlook.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
