/root/repo/target/debug/deps/pra_core-c8f17008c250dff9.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

/root/repo/target/debug/deps/pra_core-c8f17008c250dff9: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/pra.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/sds.rs:
crates/core/src/system.rs:
crates/core/src/timing_diagram.rs:
