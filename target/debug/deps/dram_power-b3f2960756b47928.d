/root/repo/target/debug/deps/dram_power-b3f2960756b47928.d: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libdram_power-b3f2960756b47928.rmeta: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs Cargo.toml

crates/dram-power/src/lib.rs:
crates/dram-power/src/accounting.rs:
crates/dram-power/src/activation_energy.rs:
crates/dram-power/src/breakdown.rs:
crates/dram-power/src/overheads.rs:
crates/dram-power/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
