/root/repo/target/debug/deps/fig15-784790b87fb9544d.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-784790b87fb9544d: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
