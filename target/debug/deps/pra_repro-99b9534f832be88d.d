/root/repo/target/debug/deps/pra_repro-99b9534f832be88d.d: src/lib.rs

/root/repo/target/debug/deps/libpra_repro-99b9534f832be88d.rlib: src/lib.rs

/root/repo/target/debug/deps/libpra_repro-99b9534f832be88d.rmeta: src/lib.rs

src/lib.rs:
