/root/repo/target/debug/deps/bench-01d59a90d72e3f59.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-01d59a90d72e3f59.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-01d59a90d72e3f59.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
