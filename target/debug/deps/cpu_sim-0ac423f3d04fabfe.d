/root/repo/target/debug/deps/cpu_sim-0ac423f3d04fabfe.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/debug/deps/cpu_sim-0ac423f3d04fabfe: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
