/root/repo/target/debug/deps/table2-e26faac997e2d2d4.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e26faac997e2d2d4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
