/root/repo/target/debug/deps/sweep_dirty-e42929c3725a49d6.d: crates/bench/src/bin/sweep_dirty.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_dirty-e42929c3725a49d6.rmeta: crates/bench/src/bin/sweep_dirty.rs Cargo.toml

crates/bench/src/bin/sweep_dirty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
