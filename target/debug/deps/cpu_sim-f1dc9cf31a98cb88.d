/root/repo/target/debug/deps/cpu_sim-f1dc9cf31a98cb88.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/debug/deps/libcpu_sim-f1dc9cf31a98cb88.rlib: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/debug/deps/libcpu_sim-f1dc9cf31a98cb88.rmeta: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
