/root/repo/target/debug/deps/fig09-34401e79fbc20e37.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-34401e79fbc20e37: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
