/root/repo/target/debug/deps/mem_model-edc1b2c8ef8e071f.d: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libmem_model-edc1b2c8ef8e071f.rmeta: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs Cargo.toml

crates/mem-model/src/lib.rs:
crates/mem-model/src/addr.rs:
crates/mem-model/src/geometry.rs:
crates/mem-model/src/mapping.rs:
crates/mem-model/src/mask.rs:
crates/mem-model/src/request.rs:
crates/mem-model/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
