/root/repo/target/debug/deps/workloads-288e4a37d0c17c99.d: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-288e4a37d0c17c99.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/analysis.rs:
crates/workloads/src/benches.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
