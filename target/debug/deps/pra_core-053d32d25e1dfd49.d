/root/repo/target/debug/deps/pra_core-053d32d25e1dfd49.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

/root/repo/target/debug/deps/libpra_core-053d32d25e1dfd49.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

/root/repo/target/debug/deps/libpra_core-053d32d25e1dfd49.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/pra.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/sds.rs:
crates/core/src/system.rs:
crates/core/src/timing_diagram.rs:
