/root/repo/target/debug/deps/bench-9756c21ba9c98803.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bench-9756c21ba9c98803: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
