/root/repo/target/debug/deps/dram_power-9bb4be1addbf7d59.d: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

/root/repo/target/debug/deps/dram_power-9bb4be1addbf7d59: crates/dram-power/src/lib.rs crates/dram-power/src/accounting.rs crates/dram-power/src/activation_energy.rs crates/dram-power/src/breakdown.rs crates/dram-power/src/overheads.rs crates/dram-power/src/params.rs

crates/dram-power/src/lib.rs:
crates/dram-power/src/accounting.rs:
crates/dram-power/src/activation_energy.rs:
crates/dram-power/src/breakdown.rs:
crates/dram-power/src/overheads.rs:
crates/dram-power/src/params.rs:
