/root/repo/target/debug/deps/sim_obs-52a0b0971677f2c9.d: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

/root/repo/target/debug/deps/libsim_obs-52a0b0971677f2c9.rlib: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

/root/repo/target/debug/deps/libsim_obs-52a0b0971677f2c9.rmeta: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

crates/sim-obs/src/lib.rs:
crates/sim-obs/src/event.rs:
crates/sim-obs/src/hist.rs:
crates/sim-obs/src/registry.rs:
crates/sim-obs/src/sink.rs:
