/root/repo/target/debug/deps/fig10-0cdcec0eeebdc68c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-0cdcec0eeebdc68c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
