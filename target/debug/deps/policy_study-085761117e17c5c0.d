/root/repo/target/debug/deps/policy_study-085761117e17c5c0.d: crates/bench/src/bin/policy_study.rs

/root/repo/target/debug/deps/policy_study-085761117e17c5c0: crates/bench/src/bin/policy_study.rs

crates/bench/src/bin/policy_study.rs:
