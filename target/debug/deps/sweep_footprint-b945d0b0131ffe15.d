/root/repo/target/debug/deps/sweep_footprint-b945d0b0131ffe15.d: crates/bench/src/bin/sweep_footprint.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_footprint-b945d0b0131ffe15.rmeta: crates/bench/src/bin/sweep_footprint.rs Cargo.toml

crates/bench/src/bin/sweep_footprint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
