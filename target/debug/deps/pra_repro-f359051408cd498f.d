/root/repo/target/debug/deps/pra_repro-f359051408cd498f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpra_repro-f359051408cd498f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
