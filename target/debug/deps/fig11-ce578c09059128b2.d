/root/repo/target/debug/deps/fig11-ce578c09059128b2.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-ce578c09059128b2: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
