/root/repo/target/debug/deps/workloads-c041d5181fe10ef6.d: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/workloads-c041d5181fe10ef6: crates/workloads/src/lib.rs crates/workloads/src/analysis.rs crates/workloads/src/benches.rs crates/workloads/src/generator.rs crates/workloads/src/profile.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analysis.rs:
crates/workloads/src/benches.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/trace.rs:
