/root/repo/target/debug/deps/pra_repro-17903417460b0461.d: src/lib.rs

/root/repo/target/debug/deps/libpra_repro-17903417460b0461.rlib: src/lib.rs

/root/repo/target/debug/deps/libpra_repro-17903417460b0461.rmeta: src/lib.rs

src/lib.rs:
