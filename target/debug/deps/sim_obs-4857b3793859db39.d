/root/repo/target/debug/deps/sim_obs-4857b3793859db39.d: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

/root/repo/target/debug/deps/sim_obs-4857b3793859db39: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs

crates/sim-obs/src/lib.rs:
crates/sim-obs/src/event.rs:
crates/sim-obs/src/hist.rs:
crates/sim-obs/src/registry.rs:
crates/sim-obs/src/sink.rs:
