/root/repo/target/debug/deps/properties-ac4cf978ecfc002f.d: crates/dram-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ac4cf978ecfc002f.rmeta: crates/dram-sim/tests/properties.rs Cargo.toml

crates/dram-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
