/root/repo/target/debug/deps/pra_cli-93395a800281d0ee.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/pra_cli-93395a800281d0ee: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
