/root/repo/target/debug/deps/render_figures-74e1a60103b6248d.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/debug/deps/render_figures-74e1a60103b6248d: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
