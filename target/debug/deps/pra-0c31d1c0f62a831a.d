/root/repo/target/debug/deps/pra-0c31d1c0f62a831a.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/pra-0c31d1c0f62a831a: crates/cli/src/main.rs

crates/cli/src/main.rs:
