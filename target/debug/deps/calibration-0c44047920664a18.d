/root/repo/target/debug/deps/calibration-0c44047920664a18.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-0c44047920664a18.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
