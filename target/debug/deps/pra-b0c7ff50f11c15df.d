/root/repo/target/debug/deps/pra-b0c7ff50f11c15df.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpra-b0c7ff50f11c15df.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
