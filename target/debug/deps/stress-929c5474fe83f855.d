/root/repo/target/debug/deps/stress-929c5474fe83f855.d: crates/dram-sim/tests/stress.rs

/root/repo/target/debug/deps/stress-929c5474fe83f855: crates/dram-sim/tests/stress.rs

crates/dram-sim/tests/stress.rs:
