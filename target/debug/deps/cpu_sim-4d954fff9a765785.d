/root/repo/target/debug/deps/cpu_sim-4d954fff9a765785.d: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/debug/deps/libcpu_sim-4d954fff9a765785.rlib: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

/root/repo/target/debug/deps/libcpu_sim-4d954fff9a765785.rmeta: crates/cpu-sim/src/lib.rs crates/cpu-sim/src/core.rs crates/cpu-sim/src/metrics.rs crates/cpu-sim/src/system.rs

crates/cpu-sim/src/lib.rs:
crates/cpu-sim/src/core.rs:
crates/cpu-sim/src/metrics.rs:
crates/cpu-sim/src/system.rs:
