/root/repo/target/debug/deps/fig09-25ea30897b8a4d69.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-25ea30897b8a4d69: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
