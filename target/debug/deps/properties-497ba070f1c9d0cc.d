/root/repo/target/debug/deps/properties-497ba070f1c9d0cc.d: crates/cache-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-497ba070f1c9d0cc: crates/cache-sim/tests/properties.rs

crates/cache-sim/tests/properties.rs:
