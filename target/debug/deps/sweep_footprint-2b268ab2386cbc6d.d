/root/repo/target/debug/deps/sweep_footprint-2b268ab2386cbc6d.d: crates/bench/src/bin/sweep_footprint.rs

/root/repo/target/debug/deps/sweep_footprint-2b268ab2386cbc6d: crates/bench/src/bin/sweep_footprint.rs

crates/bench/src/bin/sweep_footprint.rs:
