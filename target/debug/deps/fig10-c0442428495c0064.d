/root/repo/target/debug/deps/fig10-c0442428495c0064.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c0442428495c0064: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
