/root/repo/target/debug/deps/properties-2642d4866d33925c.d: crates/cpu-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-2642d4866d33925c: crates/cpu-sim/tests/properties.rs

crates/cpu-sim/tests/properties.rs:
