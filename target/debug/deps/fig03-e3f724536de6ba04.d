/root/repo/target/debug/deps/fig03-e3f724536de6ba04.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/debug/deps/libfig03-e3f724536de6ba04.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
