/root/repo/target/debug/deps/properties-11951e2019c4e89a.d: crates/dram-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-11951e2019c4e89a: crates/dram-sim/tests/properties.rs

crates/dram-sim/tests/properties.rs:
