/root/repo/target/debug/deps/mem_model-6cb8a8c3225a931c.d: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

/root/repo/target/debug/deps/mem_model-6cb8a8c3225a931c: crates/mem-model/src/lib.rs crates/mem-model/src/addr.rs crates/mem-model/src/geometry.rs crates/mem-model/src/mapping.rs crates/mem-model/src/mask.rs crates/mem-model/src/request.rs crates/mem-model/src/rng.rs

crates/mem-model/src/lib.rs:
crates/mem-model/src/addr.rs:
crates/mem-model/src/geometry.rs:
crates/mem-model/src/mapping.rs:
crates/mem-model/src/mask.rs:
crates/mem-model/src/request.rs:
crates/mem-model/src/rng.rs:
