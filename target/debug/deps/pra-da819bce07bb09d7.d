/root/repo/target/debug/deps/pra-da819bce07bb09d7.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpra-da819bce07bb09d7.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
