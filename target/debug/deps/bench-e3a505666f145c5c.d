/root/repo/target/debug/deps/bench-e3a505666f145c5c.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbench-e3a505666f145c5c.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
