/root/repo/target/debug/deps/policy_study-aafba44fa8f19b10.d: crates/bench/src/bin/policy_study.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_study-aafba44fa8f19b10.rmeta: crates/bench/src/bin/policy_study.rs Cargo.toml

crates/bench/src/bin/policy_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
