/root/repo/target/debug/deps/calibration-fcd42fb1df2bdeb0.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-fcd42fb1df2bdeb0: tests/calibration.rs

tests/calibration.rs:
