/root/repo/target/debug/deps/related_sds-0df2795ae35c233f.d: crates/bench/src/bin/related_sds.rs Cargo.toml

/root/repo/target/debug/deps/librelated_sds-0df2795ae35c233f.rmeta: crates/bench/src/bin/related_sds.rs Cargo.toml

crates/bench/src/bin/related_sds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
