/root/repo/target/debug/deps/table2-e448b706b021a193.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e448b706b021a193.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
