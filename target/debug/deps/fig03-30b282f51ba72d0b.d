/root/repo/target/debug/deps/fig03-30b282f51ba72d0b.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/debug/deps/libfig03-30b282f51ba72d0b.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
