/root/repo/target/debug/deps/fig12-9c81d23e47138a1e.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-9c81d23e47138a1e: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
