/root/repo/target/debug/deps/sweep_dirty-8df3a1b89972d232.d: crates/bench/src/bin/sweep_dirty.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_dirty-8df3a1b89972d232.rmeta: crates/bench/src/bin/sweep_dirty.rs Cargo.toml

crates/bench/src/bin/sweep_dirty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
