/root/repo/target/debug/deps/ddr4_outlook-71c5c70a5b6f8613.d: crates/bench/src/bin/ddr4_outlook.rs

/root/repo/target/debug/deps/ddr4_outlook-71c5c70a5b6f8613: crates/bench/src/bin/ddr4_outlook.rs

crates/bench/src/bin/ddr4_outlook.rs:
