/root/repo/target/debug/deps/properties-584cfa516b78d03c.d: crates/dram-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-584cfa516b78d03c: crates/dram-sim/tests/properties.rs

crates/dram-sim/tests/properties.rs:
