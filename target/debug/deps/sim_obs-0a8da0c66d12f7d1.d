/root/repo/target/debug/deps/sim_obs-0a8da0c66d12f7d1.d: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libsim_obs-0a8da0c66d12f7d1.rmeta: crates/sim-obs/src/lib.rs crates/sim-obs/src/event.rs crates/sim-obs/src/hist.rs crates/sim-obs/src/registry.rs crates/sim-obs/src/sink.rs Cargo.toml

crates/sim-obs/src/lib.rs:
crates/sim-obs/src/event.rs:
crates/sim-obs/src/hist.rs:
crates/sim-obs/src/registry.rs:
crates/sim-obs/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
