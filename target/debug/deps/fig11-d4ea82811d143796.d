/root/repo/target/debug/deps/fig11-d4ea82811d143796.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-d4ea82811d143796: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
