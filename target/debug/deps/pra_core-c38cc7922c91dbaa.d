/root/repo/target/debug/deps/pra_core-c38cc7922c91dbaa.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs Cargo.toml

/root/repo/target/debug/deps/libpra_core-c38cc7922c91dbaa.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/pra.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/sds.rs crates/core/src/system.rs crates/core/src/timing_diagram.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/pra.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/sds.rs:
crates/core/src/system.rs:
crates/core/src/timing_diagram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
