/root/repo/target/debug/deps/related_sds-a43097ed72afe7bb.d: crates/bench/src/bin/related_sds.rs

/root/repo/target/debug/deps/related_sds-a43097ed72afe7bb: crates/bench/src/bin/related_sds.rs

crates/bench/src/bin/related_sds.rs:
