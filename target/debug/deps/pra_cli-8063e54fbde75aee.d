/root/repo/target/debug/deps/pra_cli-8063e54fbde75aee.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpra_cli-8063e54fbde75aee.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
