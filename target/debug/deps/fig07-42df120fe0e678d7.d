/root/repo/target/debug/deps/fig07-42df120fe0e678d7.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-42df120fe0e678d7: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
