/root/repo/target/debug/deps/observability-2e52651a84b61fcc.d: crates/dram-sim/tests/observability.rs

/root/repo/target/debug/deps/observability-2e52651a84b61fcc: crates/dram-sim/tests/observability.rs

crates/dram-sim/tests/observability.rs:
