/root/repo/target/debug/deps/bench-fb02706e74c3c5ff.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbench-fb02706e74c3c5ff.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
