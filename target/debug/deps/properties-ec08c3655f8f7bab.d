/root/repo/target/debug/deps/properties-ec08c3655f8f7bab.d: crates/cpu-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-ec08c3655f8f7bab: crates/cpu-sim/tests/properties.rs

crates/cpu-sim/tests/properties.rs:
