/root/repo/target/debug/deps/pra_cli-36fc13b3dc83e137.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpra_cli-36fc13b3dc83e137.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
