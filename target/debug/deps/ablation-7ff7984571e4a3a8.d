/root/repo/target/debug/deps/ablation-7ff7984571e4a3a8.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-7ff7984571e4a3a8: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
