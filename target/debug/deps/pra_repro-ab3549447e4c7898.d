/root/repo/target/debug/deps/pra_repro-ab3549447e4c7898.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpra_repro-ab3549447e4c7898.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
