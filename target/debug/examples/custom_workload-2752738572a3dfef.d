/root/repo/target/debug/examples/custom_workload-2752738572a3dfef.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-2752738572a3dfef: examples/custom_workload.rs

examples/custom_workload.rs:
