/root/repo/target/debug/examples/custom_workload-6d0341c5d62b36be.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-6d0341c5d62b36be: examples/custom_workload.rs

examples/custom_workload.rs:
