/root/repo/target/debug/examples/power_explorer-18d55591087e8a39.d: examples/power_explorer.rs

/root/repo/target/debug/examples/power_explorer-18d55591087e8a39: examples/power_explorer.rs

examples/power_explorer.rs:
