/root/repo/target/debug/examples/power_explorer-05495505796c54c8.d: examples/power_explorer.rs

/root/repo/target/debug/examples/power_explorer-05495505796c54c8: examples/power_explorer.rs

examples/power_explorer.rs:
