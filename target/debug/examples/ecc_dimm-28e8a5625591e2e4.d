/root/repo/target/debug/examples/ecc_dimm-28e8a5625591e2e4.d: examples/ecc_dimm.rs Cargo.toml

/root/repo/target/debug/examples/libecc_dimm-28e8a5625591e2e4.rmeta: examples/ecc_dimm.rs Cargo.toml

examples/ecc_dimm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
