/root/repo/target/debug/examples/power_explorer-f3558d0a26e57826.d: examples/power_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libpower_explorer-f3558d0a26e57826.rmeta: examples/power_explorer.rs Cargo.toml

examples/power_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
