/root/repo/target/debug/examples/trace_replay-c0ef5449970b4572.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-c0ef5449970b4572: examples/trace_replay.rs

examples/trace_replay.rs:
