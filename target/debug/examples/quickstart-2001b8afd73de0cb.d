/root/repo/target/debug/examples/quickstart-2001b8afd73de0cb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2001b8afd73de0cb: examples/quickstart.rs

examples/quickstart.rs:
