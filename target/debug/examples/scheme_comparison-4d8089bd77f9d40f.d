/root/repo/target/debug/examples/scheme_comparison-4d8089bd77f9d40f.d: examples/scheme_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_comparison-4d8089bd77f9d40f.rmeta: examples/scheme_comparison.rs Cargo.toml

examples/scheme_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
