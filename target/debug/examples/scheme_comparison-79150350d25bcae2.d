/root/repo/target/debug/examples/scheme_comparison-79150350d25bcae2.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-79150350d25bcae2: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
