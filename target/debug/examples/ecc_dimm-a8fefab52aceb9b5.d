/root/repo/target/debug/examples/ecc_dimm-a8fefab52aceb9b5.d: examples/ecc_dimm.rs

/root/repo/target/debug/examples/ecc_dimm-a8fefab52aceb9b5: examples/ecc_dimm.rs

examples/ecc_dimm.rs:
