/root/repo/target/debug/examples/quickstart-5a6f6d2af1a3466f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5a6f6d2af1a3466f: examples/quickstart.rs

examples/quickstart.rs:
