/root/repo/target/debug/examples/scheme_comparison-d1d4ab06c8cc856f.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-d1d4ab06c8cc856f: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
