/root/repo/target/debug/examples/trace_replay-7367f896bfb4ca33.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-7367f896bfb4ca33: examples/trace_replay.rs

examples/trace_replay.rs:
