/root/repo/target/debug/examples/ecc_dimm-aa129ca187de2e52.d: examples/ecc_dimm.rs

/root/repo/target/debug/examples/ecc_dimm-aa129ca187de2e52: examples/ecc_dimm.rs

examples/ecc_dimm.rs:
