#!/usr/bin/env bash
# Kill-resume chaos check: SIGKILL a checkpointing campaign mid-run, resume
# it from its on-disk snapshots, and prove the resumed run (a) really did
# restore mid-flight (journaled resumed_from_cycle > 0) and (b) finished
# with a state digest bit-identical to an uninterrupted reference run.
#
# Usage: ci/kill_resume.sh [workdir]
#   PRA_BIN overrides the pra binary (default: target/release/pra).
set -euo pipefail

PRA_BIN="${PRA_BIN:-target/release/pra}"
WORK="${1:-killresume-work}"
rm -rf "$WORK"
mkdir -p "$WORK"

make_matrix() { # $1 = output file, $2 = checkpoint dir
    cat > "$1" <<EOF
schemes = ["pra"]
workloads = ["GUPS"]
seeds = [1]
instructions = 1000000
warmup = 100000
fault_plans = ["docs/faults/chaos.toml"]
recovery = true
checkpoint_every = 5000
checkpoint_dir = "$2"
EOF
}

echo "== reference: uninterrupted campaign =="
make_matrix "$WORK/ref.toml" "$WORK/ref-snaps"
"$PRA_BIN" campaign run --matrix "$WORK/ref.toml" \
    --journal "$WORK/ref.jsonl" --jobs 1

echo "== victim: campaign killed mid-run with SIGKILL =="
make_matrix "$WORK/victim.toml" "$WORK/victim-snaps"
mkdir -p "$WORK/victim-snaps"
"$PRA_BIN" campaign run --matrix "$WORK/victim.toml" \
    --journal "$WORK/victim.jsonl" --jobs 1 &
pid=$!

# Wait until the in-flight runs have committed snapshots to disk, then
# SIGKILL the whole campaign — no journal line has been written for them,
# so the resume below must re-execute them from their checkpoints.
deadline=$((SECONDS + 120))
while kill -0 "$pid" 2>/dev/null; do
    snaps=$(find "$WORK/victim-snaps" -name '*.snap' | wc -l || true)
    if [ "$snaps" -ge 3 ]; then
        kill -9 "$pid"
        echo "killed campaign (pid $pid) after $snaps checkpoints"
        break
    fi
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: no checkpoints appeared within 120 s"
        kill -9 "$pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.05
done
wait "$pid" 2>/dev/null || true

if grep -q '"status"' "$WORK/victim.jsonl" 2>/dev/null; then
    echo "FAIL: the kill landed after the run was journaled — raise instructions"
    exit 1
fi

echo "== resume: surviving runs restore from their snapshots =="
"$PRA_BIN" campaign resume --matrix "$WORK/victim.toml" \
    --journal "$WORK/victim.jsonl" --jobs 1 | tee "$WORK/resume.out"

echo "== verify: resumed mid-flight, digest identical to reference =="
python3 - "$WORK/ref.jsonl" "$WORK/victim.jsonl" <<'EOF'
import json, sys

def load(path):
    runs = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            runs[(r["config"], r["seed"])] = r
    return runs

ref, victim = load(sys.argv[1]), load(sys.argv[2])
assert ref, "reference journal is empty"
assert set(ref) == set(victim), (sorted(ref), sorted(victim))
resumed = 0
for key, r in ref.items():
    v = victim[key]
    assert r["state_digest"] == v["state_digest"], (
        f"{key}: digest {v['state_digest']} != reference {r['state_digest']}"
    )
    assert r["status"] == v["status"], (key, r["status"], v["status"])
    if v["resumed_from_cycle"] > 0:
        resumed += 1
assert resumed >= 1, "no run resumed from a checkpoint (resumed_from_cycle == 0 everywhere)"
print(f"kill-resume OK: {len(victim)} run(s), {resumed} resumed mid-flight, digests identical")
EOF

grep -q "checkpoint recovery: 1 run resumed" "$WORK/resume.out"
echo "kill-resume chaos check passed"
